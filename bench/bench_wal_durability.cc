// Durability cost of the on-disk WAL: what one committed transaction
// pays at each point of the fsync spectrum.
//
//  - per_record: every record is its own Append → one fsync per record
//    (the naive "log everything immediately" baseline).
//  - batched: the whole transaction goes through AppendBatch → one
//    write(2) + one fsync per commit, regardless of transaction size.
//  - coalesced: AppendBatch with coalesce_fsyncs — concurrent
//    committers share fsyncs, so the fsyncs/commit counter drops below
//    1 as threads overlap (the group-commit window).
//
// The headline counter is fsyncs_per_commit; wall time depends on the
// backing filesystem (tmpfs vs. real disk) but the syscall counts do
// not.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "storage/wal.h"

namespace concord::storage {
namespace {

constexpr int kRecordsPerTxn = 4;

WalRecord MakeDovWrite(TxnId txn, uint64_t dov_value) {
  DovRecord dov;
  dov.id = DovId(dov_value);
  dov.owner_da = DaId(1);
  dov.type = DotId(1);
  dov.data = DesignObject(DotId(1));
  dov.data.SetAttr("value", static_cast<int64_t>(dov_value));
  dov.data.SetAttr("name",
                   IndexedName("module-", static_cast<long long>(dov_value)));
  return {WalRecord::Type::kWriteDov, txn, std::move(dov), "", ""};
}

std::vector<WalRecord> MakeTxnBatch(uint64_t seq) {
  TxnId txn(seq + 1);
  std::vector<WalRecord> batch;
  batch.push_back({WalRecord::Type::kBegin, txn, std::nullopt, "", ""});
  for (int i = 0; i < kRecordsPerTxn; ++i) {
    batch.push_back(
        MakeDovWrite(txn, seq * kRecordsPerTxn + static_cast<uint64_t>(i)));
  }
  batch.push_back({WalRecord::Type::kCommit, txn, std::nullopt, "", ""});
  return batch;
}

/// Fresh file-backed WAL in a throwaway temp directory.
struct WalEnv {
  explicit WalEnv(bool coalesce) {
    char tmpl[] = "/tmp/concord_bench_wal_XXXXXX";
    const char* created = ::mkdtemp(tmpl);
    if (created == nullptr) std::abort();
    dir = created;
    WalOptions options;
    options.dir = dir;
    options.coalesce_fsyncs = coalesce;
    wal = std::make_unique<WriteAheadLog>();
    if (!wal->Open(options).ok()) std::abort();
  }

  ~WalEnv() {
    wal->Close();
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }

  std::string dir;
  std::unique_ptr<WriteAheadLog> wal;
};

void BM_WalPerRecordFsync(benchmark::State& state) {
  WalEnv env(/*coalesce=*/false);
  uint64_t seq = 0;
  for (auto _ : state) {
    for (WalRecord& record : MakeTxnBatch(seq++)) {
      env.wal->Append(std::move(record));
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["fsyncs_per_commit"] =
      static_cast<double>(env.wal->flushes()) /
      static_cast<double>(std::max<uint64_t>(1, seq));
}
BENCHMARK(BM_WalPerRecordFsync)->UseRealTime();

void BM_WalBatchedCommit(benchmark::State& state) {
  WalEnv env(/*coalesce=*/false);
  uint64_t seq = 0;
  for (auto _ : state) {
    env.wal->AppendBatch(MakeTxnBatch(seq++));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["fsyncs_per_commit"] =
      static_cast<double>(env.wal->flushes()) /
      static_cast<double>(std::max<uint64_t>(1, seq));
}
BENCHMARK(BM_WalBatchedCommit)->UseRealTime();

std::unique_ptr<WalEnv> g_env;

void BM_WalCoalescedCommit(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_env = std::make_unique<WalEnv>(/*coalesce=*/true);
  }
  // benchmark's start barrier orders thread 0's setup before the loop.
  uint64_t seq = static_cast<uint64_t>(state.thread_index()) * 1000000;
  uint64_t committed = 0;
  for (auto _ : state) {
    g_env->wal->AppendBatch(MakeTxnBatch(seq++));
    ++committed;
  }
  state.SetItemsProcessed(state.iterations());
  benchmark::DoNotOptimize(committed);
  if (state.thread_index() == 0) {
    // iterations() is per-thread; every thread runs the same count.
    double total_commits = static_cast<double>(state.iterations()) *
                           static_cast<double>(state.threads());
    state.counters["fsyncs_per_commit"] =
        static_cast<double>(g_env->wal->flushes()) /
        std::max(1.0, total_commits);
    g_env.reset();
  }
}
BENCHMARK(BM_WalCoalescedCommit)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

}  // namespace
}  // namespace concord::storage

BENCHMARK_MAIN();
