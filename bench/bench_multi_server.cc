// Sharded server-plane benchmarks. Three questions, three scenarios:
//
//  1. BM_MultiServer_DesignPlane — does a multi-designer workload
//     actually spread across N server nodes? Runs the full
//     MultiDesignerSimulation with a 1/2/4-node plane and reports the
//     per-node round-trip split plus the cross-shard 2PC count.
//  2. BM_CheckinCommit_SingleShard / _CrossShard — what does a
//     cross-shard End-of-DOP cost? The single-shard pair rides one
//     degenerate envelope (1 round trip); spanning two shards pays the
//     true multi-participant protocol (phase-1 envelope per node +
//     Decide fan-out).
//  3. BM_MultiServer_LossyCrossShard — the cross-shard protocol under
//     30% message loss: the transport retries, the ledger keeps the
//     outcome atomic, and the retry counters show the price.
//
// CI smoke-runs BM_MultiServer_DesignPlane/2 so the multi-node wiring
// (and its counters) cannot bit-rot.

#include <benchmark/benchmark.h>

#include <memory>
#include <optional>
#include <vector>

#include "bench/bench_tm_env.h"
#include "sim/simulator.h"

namespace concord {
namespace {

using bench::TmEnv;

/// One full multi-designer simulation per iteration against an N-node
/// server plane; the interesting output is the counter set.
void BM_MultiServer_DesignPlane(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  std::vector<uint64_t> per_node;
  uint64_t cross_shard = 0, completed = 0, round_trips = 0;
  for (auto _ : state) {
    sim::SimulationOptions options;
    options.designs = 4;
    options.complexity = 4;
    options.server_nodes = nodes;
    sim::MultiDesignerSimulation simulation(options);
    auto report = simulation.Run();
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      break;
    }
    per_node = report->per_node_round_trips;
    cross_shard = report->cross_shard_interactions;
    completed = static_cast<uint64_t>(report->designs_completed);
    round_trips = report->rpc_calls;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["designs_completed"] = static_cast<double>(completed);
  state.counters["round_trips"] = static_cast<double>(round_trips);
  state.counters["cross_shard_2pc"] = static_cast<double>(cross_shard);
  for (size_t i = 0; i < per_node.size(); ++i) {
    state.counters["node" + std::to_string(i) + "_trips"] =
        static_cast<double>(per_node[i]);
  }
}
BENCHMARK(BM_MultiServer_DesignPlane)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Baseline: checkout + checkin+commit with every op on one shard —
/// the degenerate envelopes (1 round trip each).
void BM_CheckinCommit_SingleShard(benchmark::State& state) {
  TmEnv env(1, 2);
  txn::ClientTm& tm = *env.clients[0];
  DaId da(1);  // placed on shard 0 by Seed(); warm_dov[0] lives there too
  uint64_t before = env.rpc.stats().calls;
  uint64_t iterations = 0;
  for (auto _ : state) {
    // Force a server checkout every round (a cached hit would skip the
    // input shard entirely and break comparability with _CrossShard).
    tm.cache().Invalidate(env.warm_dov[0]);
    auto dop = tm.BeginDop(da);
    if (!dop.ok() || !tm.Checkout(*dop, env.warm_dov[0]).ok()) {
      state.SkipWithError("setup failed");
      break;
    }
    storage::DesignObject next(env.dot);
    next.SetAttr("value", static_cast<int64_t>(iterations++));
    if (!tm.CheckinCommit(*dop, std::move(next), {env.warm_dov[0]}).ok()) {
      state.SkipWithError("checkin+commit failed");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["round_trips_per_txn"] =
      state.iterations() == 0
          ? 0.0
          : static_cast<double>(env.rpc.stats().calls - before) /
                static_cast<double>(state.iterations());
  state.counters["cross_shard_2pc"] =
      static_cast<double>(tm.two_pc_stats().multi_node_protocols);
}
BENCHMARK(BM_CheckinCommit_SingleShard);

/// The DOP's input lives on shard 0 but its DA is homed on shard 1:
/// the checkout enlists shard 0, and every checkin+commit then spans
/// both shards — phase-1 envelopes to each participant plus the Decide
/// fan-out, all visible in round_trips_per_txn.
void BM_CheckinCommit_CrossShard(benchmark::State& state) {
  TmEnv env(1, 2);
  txn::ClientTm& tm = *env.clients[0];
  DaId da(77);
  env.placement.Assign(da, env.shards[1].node).ok();
  uint64_t before = env.rpc.stats().calls;
  uint64_t iterations = 0;
  for (auto _ : state) {
    // Every round must re-enlist shard 0 (the input's home) so the
    // End-of-DOP genuinely spans both shards.
    tm.cache().Invalidate(env.warm_dov[0]);
    auto dop = tm.BeginDop(da);
    if (!dop.ok() || !tm.Checkout(*dop, env.warm_dov[0]).ok()) {
      state.SkipWithError("setup failed");
      break;
    }
    storage::DesignObject next(env.dot);
    next.SetAttr("value", static_cast<int64_t>(iterations++));
    if (!tm.CheckinCommit(*dop, std::move(next), {env.warm_dov[0]}).ok()) {
      state.SkipWithError("cross-shard checkin+commit failed");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["round_trips_per_txn"] =
      state.iterations() == 0
          ? 0.0
          : static_cast<double>(env.rpc.stats().calls - before) /
                static_cast<double>(state.iterations());
  state.counters["cross_shard_2pc"] =
      static_cast<double>(tm.two_pc_stats().multi_node_protocols);
  state.counters["participant_envelopes"] =
      static_cast<double>(tm.two_pc_stats().participant_envelopes);
}
BENCHMARK(BM_CheckinCommit_CrossShard);

/// Cross-shard commit under heavy loss: the transactional RPC retries
/// each envelope, the ledger keeps both shards atomic, and the retry
/// counter shows what the reliability costs.
void BM_MultiServer_LossyCrossShard(benchmark::State& state) {
  TmEnv env(1, 2);
  env.network.set_loss_probability(0.30);
  txn::ClientTm& tm = *env.clients[0];
  DaId da(77);
  env.placement.Assign(da, env.shards[1].node).ok();
  uint64_t committed = 0, failed = 0, iterations = 0;
  for (auto _ : state) {
    tm.cache().Invalidate(env.warm_dov[0]);
    auto dop = tm.BeginDop(da);
    if (!dop.ok()) {
      ++failed;
      continue;
    }
    if (!tm.Checkout(*dop, env.warm_dov[0]).ok()) {
      tm.AbortDop(*dop).ok();
      ++failed;
      continue;
    }
    storage::DesignObject next(env.dot);
    next.SetAttr("value", static_cast<int64_t>(iterations++));
    if (tm.CheckinCommit(*dop, std::move(next), {env.warm_dov[0]}).ok()) {
      ++committed;
    } else {
      tm.AbortDop(*dop).ok();
      ++failed;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["committed"] = static_cast<double>(committed);
  state.counters["failed"] = static_cast<double>(failed);
  state.counters["rpc_retries"] = static_cast<double>(env.rpc.stats().retries);
  state.counters["dup_suppressed"] =
      static_cast<double>(env.rpc.stats().duplicate_suppressed);
}
BENCHMARK(BM_MultiServer_LossyCrossShard);

}  // namespace
}  // namespace concord

BENCHMARK_MAIN();
