// Ablation A4 — §6 two-phase-commit optimizations.
//
// The paper closes by noting that commit processing should "exploit the
// most efficient concepts available": X/OPEN 2PC with its optimization
// alternatives [SBCM93] for LAN communication, and main-memory
// communication for co-located managers (DM-TM on the same
// workstation). This bench measures LAN messages and protocol latency
// for: full remote 2PC, the read-only optimization, the co-located
// fast path, and 2PC under message loss.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "rpc/two_phase_commit.h"
#include "txn/remote_server_stub.h"

namespace concord::rpc {
namespace {

class Vote : public TwoPcParticipant {
 public:
  Vote(NodeId node, bool read_only = false)
      : node_(node), read_only_(read_only) {}
  NodeId node() const override { return node_; }
  bool Prepare(TxnId) override { return true; }
  void Commit(TxnId) override {}
  void Abort(TxnId) override {}
  bool IsReadOnly(TxnId) const override { return read_only_; }

 private:
  NodeId node_;
  bool read_only_;
};

enum class Mode { kFullRemote, kReadOnlyOpt, kLocalOpt, kLossy };

void BM_Commit_Protocol(benchmark::State& state) {
  const Mode mode = static_cast<Mode>(state.range(0));
  SimClock clock;
  Network network(&clock, 3);
  NodeId server = network.AddNode("server");
  NodeId ws1 = network.AddNode("ws1");
  NodeId ws2 = network.AddNode("ws2");
  if (mode == Mode::kLossy) network.set_loss_probability(0.1);

  TwoPhaseCommitCoordinator coord(&network, server);
  coord.set_read_only_optimization(mode == Mode::kReadOnlyOpt);
  coord.set_local_optimization(mode == Mode::kLocalOpt);

  Vote remote_writer(ws1);
  Vote remote_reader(ws2, /*read_only=*/true);
  Vote local_writer(server);
  std::vector<TwoPcParticipant*> participants;
  switch (mode) {
    case Mode::kFullRemote:
    case Mode::kLossy:
      participants = {&remote_writer, &remote_reader};
      break;
    case Mode::kReadOnlyOpt:
      participants = {&remote_writer, &remote_reader};
      break;
    case Mode::kLocalOpt:
      participants = {&local_writer};
      break;
  }

  uint64_t txn = 0;
  SimTime t0 = clock.Now();
  for (auto _ : state) {
    benchmark::DoNotOptimize(coord.Execute(TxnId(++txn), participants));
  }
  double protocols = static_cast<double>(coord.stats().protocols_run);
  state.counters["lan_msgs_per_commit"] =
      static_cast<double>(coord.stats().messages) / protocols;
  state.counters["sim_latency_us_per_commit"] =
      static_cast<double>(clock.Now() - t0) / protocols;
  state.counters["aborted_frac"] =
      static_cast<double>(coord.stats().aborted) / protocols;
  switch (mode) {
    case Mode::kFullRemote:
      state.SetLabel("full_remote_2pc");
      break;
    case Mode::kReadOnlyOpt:
      state.SetLabel("read_only_opt");
      break;
    case Mode::kLocalOpt:
      state.SetLabel("local_main_memory");
      break;
    case Mode::kLossy:
      state.SetLabel("lossy_lan_10pct");
      break;
  }
}
BENCHMARK(BM_Commit_Protocol)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// End-to-end effect on DOP processing: commit-protocol share of a full
// checkout/checkin cycle, with the workstation remote vs co-located
// with the server.
void BM_Commit_DopCycleByPlacement(benchmark::State& state) {
  const bool colocated = state.range(0) != 0;
  core::ConcordSystem system(bench::DefaultConfig());
  NodeId ws =
      colocated ? system.server_node() : system.AddWorkstation("remote");
  if (colocated) {
    // Register a client-TM on the server node.
    ws = system.server_node();
  }
  // A client TM for the chosen placement, behind its own service stub
  // (co-located stubs pay only intra-node hops, never the LAN).
  txn::RemoteServerStub stub(&system.rpc(), ws, system.server_node());
  txn::ClientTm tm(&stub, &system.network(), ws, &system.clock());
  storage::DesignObject obj(system.dots().module);
  obj.SetAttr(vlsi::kAttrName, "m");
  obj.SetAttr(vlsi::kAttrDomain, vlsi::kDomainStructure);
  SimTime t0 = system.clock().Now();
  uint64_t cycles = 0;
  for (auto _ : state) {
    auto dop = tm.BeginDop(DaId(1));
    auto out = tm.Checkin(*dop, obj, {});
    tm.CommitDop(*dop).ok();
    benchmark::DoNotOptimize(out);
    ++cycles;
  }
  state.counters["sim_us_per_dop_cycle"] =
      static_cast<double>(system.clock().Now() - t0) /
      static_cast<double>(cycles);
  state.SetLabel(colocated ? "client_tm_on_server" : "client_tm_remote");
}
BENCHMARK(BM_Commit_DopCycleByPlacement)->Arg(0)->Arg(1);

}  // namespace
}  // namespace concord::rpc

BENCHMARK_MAIN();
