// Long-run chaos bench: generates a large design plane, drives mixed
// traffic from many designer threads under the seeded failure
// schedule, and emits BENCH_scale_chaos.json for the CI gate
// (tools/check_scale_chaos.sh requires violations_total == 0).
//
// Every knob is an environment variable so the same binary serves the
// CI short configuration (the defaults: 10^5 DOVs) and the full
// million-DOV overnight run:
//
//   CONCORD_CHAOS_DOVS=1000000 CONCORD_CHAOS_OPS=20000 ./bench_scale_chaos
//
// CONCORD_SEED replays a failing schedule exactly (docs/SCALE.md).

#include <cstdio>
#include <cstdlib>

#include "sim/scale_harness.h"

namespace concord::sim {
namespace {

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  uint64_t parsed = std::strtoull(env, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

double EnvOr(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(env, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

int RunChaosBench() {
  ScaleConfig config;
  config.seed = EnvOr("CONCORD_SEED", uint64_t{42});
  config.server_nodes = EnvOr("CONCORD_CHAOS_NODES", uint64_t{4});
  config.partitions =
      static_cast<int>(EnvOr("CONCORD_CHAOS_PARTITIONS", uint64_t{2}));
  config.workstations = EnvOr("CONCORD_CHAOS_WS", uint64_t{8});
  config.das = EnvOr("CONCORD_CHAOS_DAS", uint64_t{32});
  config.dovs = EnvOr("CONCORD_CHAOS_DOVS", uint64_t{100000});
  config.chain_depth = EnvOr("CONCORD_CHAOS_CHAIN_DEPTH", uint64_t{64});
  config.ops_per_workstation = EnvOr("CONCORD_CHAOS_OPS", uint64_t{1500});
  config.loss_probability = EnvOr("CONCORD_CHAOS_LOSS", 0.05);
  config.crash_cycles = EnvOr("CONCORD_CHAOS_CRASH_CYCLES", uint64_t{3});
  config.workstation_crashes =
      EnvOr("CONCORD_CHAOS_WS_CRASHES", uint64_t{2});
  config.migrations = EnvOr("CONCORD_CHAOS_MIGRATIONS", uint64_t{1});
  config.checkpoints = EnvOr("CONCORD_CHAOS_CHECKPOINTS", uint64_t{4});
  config.wal_bound = EnvOr("CONCORD_CHAOS_WAL_BOUND", uint64_t{50000});

  std::printf(
      "bench_scale_chaos: seed=%llu dovs=%zu das=%zu nodes=%zu ws=%zu "
      "ops/ws=%zu loss=%.3f crash_cycles=%zu migrations=%zu\n",
      static_cast<unsigned long long>(config.seed), config.dovs, config.das,
      config.server_nodes, config.workstations, config.ops_per_workstation,
      config.loss_probability, config.crash_cycles, config.migrations);

  ScaleHarness harness(config);
  ScaleResult result = harness.Run();

  for (const Violation& violation : result.violations) {
    std::fprintf(stderr, "VIOLATION [%s] %s\n",
                 ViolationClassName(violation.klass),
                 violation.detail.c_str());
  }

  std::string json = ScaleResultJson(result);
  const char* path = "BENCH_scale_chaos.json";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("%s", json.c_str());

  if (result.violations_total != 0) {
    std::fprintf(stderr,
                 "bench_scale_chaos: %zu invariant violation(s) — replay "
                 "with CONCORD_SEED=%llu\n",
                 result.violations_total,
                 static_cast<unsigned long long>(result.seed));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace concord::sim

int main() { return concord::sim::RunChaosBench(); }
