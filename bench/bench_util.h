#ifndef CONCORD_BENCH_BENCH_UTIL_H_
#define CONCORD_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include "core/concord_system.h"
#include "sim/scenarios.h"

namespace concord::bench {

/// Builds a fresh system with a deterministic seed derived from the
/// benchmark argument, so repeated iterations are comparable but sweeps
/// vary the workload.
inline core::SystemConfig DefaultConfig(uint64_t seed = 42) {
  core::SystemConfig config;
  config.seed = seed;
  // Keep simulated tool time moderate: benches report both wall time
  // (work our implementation does) and simulated design time (what the
  // modeled designers experience) via counters.
  config.time_per_work_unit = kMillisecond;
  return config;
}

}  // namespace concord::bench

#endif  // CONCORD_BENCH_BENCH_UTIL_H_
