// Figure 2 — The design plane (4 domains x cell hierarchy, tools 1-7).
//
// Regenerates the figure as an executable traversal: a top-level DA
// walks behavior -> structure -> floorplan -> mask layout by applying
// the numbered tools, swept over behavioral complexity (module count).
// Counters report the design-plane artifacts (area, wirelength, DOVs).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "vlsi/schema.h"

namespace concord {
namespace {

void BM_DesignPlane_FullTraversal(benchmark::State& state) {
  const int complexity = static_cast<int>(state.range(0));
  double area = 0;
  double wirelength = 0;
  double dovs = 0;
  double sim_time = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::ConcordSystem system(
        bench::DefaultConfig(42 + state.iterations()));
    auto da = sim::SetupTopLevelDa(&system, "chip", complexity, 1e9, 0);
    system.StartDa(*da).ok();
    state.ResumeTiming();

    Status st = system.RunDa(*da);
    benchmark::DoNotOptimize(st);

    state.PauseTiming();
    auto record = system.repository().Get(*system.CurrentVersion(*da));
    area = record->data.GetNumeric(vlsi::kAttrArea).value_or(0);
    wirelength = record->data.GetNumeric(vlsi::kAttrWirelength).value_or(0);
    dovs = static_cast<double>(system.repository().graph(*da).size());
    sim_time = static_cast<double>(system.clock().Now()) / kSecond;
    state.ResumeTiming();
  }
  state.counters["modules"] = complexity;
  state.counters["chip_area"] = area;
  state.counters["wirelength"] = wirelength;
  state.counters["dovs"] = dovs;
  state.counters["sim_design_time_s"] = sim_time;
}
BENCHMARK(BM_DesignPlane_FullTraversal)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

// Individual tools of the plane (arrows 1, 3, 5, 7 of Fig. 2), isolated.
void BM_DesignPlane_ToolCosts(benchmark::State& state) {
  core::ConcordSystem system(bench::DefaultConfig());
  const vlsi::ToolBox& toolbox = system.toolbox();
  Rng rng(17);
  storage::DesignObject behavioral =
      vlsi::MakeBehavioralChip(system.dots(), "c", 16);
  auto structured = toolbox.StructureSynthesis(behavioral, &rng);
  auto shaped = toolbox.ShapeFunctionGeneration(structured->object);
  auto planned = toolbox.ChipPlanning(shaped->object);

  const int tool_index = static_cast<int>(state.range(0));
  for (auto _ : state) {
    switch (tool_index) {
      case 1:
        benchmark::DoNotOptimize(
            toolbox.StructureSynthesis(behavioral, &rng));
        break;
      case 3:
        benchmark::DoNotOptimize(
            toolbox.ShapeFunctionGeneration(structured->object));
        break;
      case 5:
        benchmark::DoNotOptimize(toolbox.ChipPlanning(shaped->object));
        break;
      case 7:
        benchmark::DoNotOptimize(toolbox.ChipAssembly(planned->object));
        break;
    }
  }
  state.SetLabel("tool_" + std::to_string(tool_index));
}
BENCHMARK(BM_DesignPlane_ToolCosts)->Arg(1)->Arg(3)->Arg(5)->Arg(7);

}  // namespace
}  // namespace concord

BENCHMARK_MAIN();
