// Figure 3 — Chip planning: inputs (module & net list, shape functions,
// floorplan interface) -> outputs (floorplan contents, subcell
// interfaces), with designer re-iterations.
//
// Sweeps the module count and reports the planner's quality metrics
// (area, cut size, wirelength) plus the cost of re-iterating the
// planning step, as the paper's chip-planning discussion motivates.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "vlsi/floorplan.h"
#include "vlsi/netlist.h"
#include "vlsi/shape_function.h"

namespace concord::vlsi {
namespace {

void BM_ChipPlanning_Pipeline(benchmark::State& state) {
  const int modules = static_cast<int>(state.range(0));
  Rng rng(7);
  Netlist netlist = Netlist::Random(modules, modules * 2, 4, &rng);
  std::map<std::string, ShapeFunction> shapes;
  for (const std::string& module : netlist.modules()) {
    shapes[module] = ShapeFunction::Soft(40 + rng.Uniform(0, 60), 0.5, 2.0, 6);
  }
  ChipPlanner planner;
  double area = 0;
  double cut = 0;
  double wl = 0;
  for (auto _ : state) {
    auto plan = planner.Plan(netlist, shapes);
    benchmark::DoNotOptimize(plan);
    if (plan.ok()) {
      area = plan->Area();
      cut = plan->cut_size;
      wl = plan->wirelength;
    }
  }
  state.counters["modules"] = modules;
  state.counters["area"] = area;
  state.counters["cut_size"] = cut;
  state.counters["wirelength"] = wl;
}
BENCHMARK(BM_ChipPlanning_Pipeline)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64);

// The planner's individual steps (the toolbox of Fig. 3: bipartition,
// sizing, dimensioning+routing).
void BM_ChipPlanning_Steps(benchmark::State& state) {
  const int modules = 24;
  Rng rng(7);
  Netlist netlist = Netlist::Random(modules, modules * 2, 4, &rng);
  std::map<std::string, ShapeFunction> shapes;
  for (const std::string& module : netlist.modules()) {
    shapes[module] = ShapeFunction::Soft(50, 0.5, 2.0, 6);
  }
  ChipPlanner planner;
  auto tree = planner.Bipartition(netlist, shapes);
  const int step = static_cast<int>(state.range(0));
  for (auto _ : state) {
    switch (step) {
      case 0:
        benchmark::DoNotOptimize(planner.Bipartition(netlist, shapes));
        break;
      case 1:
        benchmark::DoNotOptimize(planner.Size(**tree, shapes));
        break;
      case 2:
        benchmark::DoNotOptimize(planner.Dimension(**tree, shapes, netlist));
        break;
    }
  }
  state.SetLabel(step == 0   ? "bipartition"
                 : step == 1 ? "sizing"
                             : "dimension+route");
}
BENCHMARK(BM_ChipPlanning_Steps)->Arg(0)->Arg(1)->Arg(2);

// Re-iterations "to achieve optimal space exploitation": repeated
// planning with repartitioning in between, tracking best area found.
void BM_ChipPlanning_Reiterations(benchmark::State& state) {
  const int replans = static_cast<int>(state.range(0));
  double best_area = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::ConcordSystem system(bench::DefaultConfig());
    const ToolBox& toolbox = system.toolbox();
    Rng rng(11 + state.iterations());
    storage::DesignObject obj =
        MakeBehavioralChip(system.dots(), "c", 12);
    obj = toolbox.StructureSynthesis(obj, &rng)->object;
    state.ResumeTiming();

    double best = 1e18;
    for (int i = 0; i < replans; ++i) {
      auto shaped = toolbox.ShapeFunctionGeneration(obj);
      auto plan = toolbox.ChipPlanning(shaped->object);
      if (plan.ok()) {
        best = std::min(best,
                        *plan->object.GetNumeric(kAttrArea));
      }
      auto repart = toolbox.Repartitioning(obj, &rng);
      if (repart.ok()) obj = repart->object;
    }
    best_area = best;
    benchmark::DoNotOptimize(best);
  }
  state.counters["replans"] = replans;
  state.counters["best_area"] = best_area;
}
BENCHMARK(BM_ChipPlanning_Reiterations)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace concord::vlsi

BENCHMARK_MAIN();
