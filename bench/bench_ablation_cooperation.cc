// Ablation A3 — §1.1/§4.1 cooperation benefit.
//
// "A particular goal can be achieved better and in shorter time if the
// DAs of a DA hierarchy work together." This bench compares design
// turnaround for a two-designer dependency (DA_B consumes DA_A's
// result) under two regimes:
//  - serialized (strict isolation, no pre-release): B starts only after
//    A terminates with its final DOV;
//  - CONCORD usage relationships: A propagates a *preliminary* DOV as
//    soon as it reaches the required quality, and B overlaps with A's
//    remaining improvement iterations.
// The designers are concurrent in the modeled world; the bench runs
// each activity on the shared simulated clock, records per-phase busy
// times, and reports the makespans
//     serialized  = t_A_total + t_B
//     cooperative = max(t_A_total, t_A_until_prerelease + t_B).

#include <benchmark/benchmark.h>

#include "common/strings.h"
#include "bench/bench_util.h"
#include "vlsi/schema.h"
#include "vlsi/tools.h"

namespace concord {
namespace {

struct PhaseTimes {
  SimTime a_until_prerelease = 0;
  SimTime a_total = 0;
  SimTime b_work = 0;
};

/// Runs DA_A's chip-planning work flow with `improve_iterations` extra
/// planning passes after the first (pre-releasable) floorplan, then
/// DA_B's work. Records simulated-busy-time per phase.
Result<PhaseTimes> RunPhases(int improve_iterations, uint64_t seed) {
  core::ConcordSystem system(bench::DefaultConfig(seed));
  PhaseTimes times;

  auto top = sim::SetupTopLevelDa(&system, "top", 4, 1e9, 0);
  CONCORD_RETURN_NOT_OK(system.StartDa(*top));
  SimTime t0 = system.clock().Now();

  // DA_A: structure + shapes + first plan ...
  cooperation::DaDescription desc;
  desc.dot = system.dots().module;
  desc.spec = sim::MakeSpec(1e9, 0, vlsi::kDomainFloorplan);
  desc.designer = DesignerId(2);
  desc.dc = sim::MakeChipPlanningScript(1);
  desc.workstation = system.AddWorkstation("a");
  auto da_a = system.CreateSubDa(*top, desc);
  storage::DesignObject seed_obj(system.dots().module);
  seed_obj.SetAttr(vlsi::kAttrName, "a");
  seed_obj.SetAttr(vlsi::kAttrDomain, vlsi::kDomainBehavior);
  seed_obj.SetAttr(vlsi::kAttrBehavior, "MODULE a COMPLEXITY 6");
  seed_obj.SetAttr(vlsi::kAttrPinCount, int64_t{8});
  CONCORD_RETURN_NOT_OK(system.SetSeedObject(*da_a, seed_obj));
  CONCORD_RETURN_NOT_OK(system.StartDa(*da_a));
  CONCORD_RETURN_NOT_OK(system.RunDa(*da_a));
  times.a_until_prerelease = system.clock().Now() - t0;

  // ... then A keeps improving (re-iterations) after the pre-release.
  const vlsi::ToolBox& toolbox = system.toolbox();
  storage::DesignObject improving =
      (*system.repository().Get(*system.CurrentVersion(*da_a))).data;
  for (int i = 0; i < improve_iterations; ++i) {
    improving.SetAttr(vlsi::kAttrDomain, vlsi::kDomainStructure);
    auto shaped = toolbox.ShapeFunctionGeneration(improving);
    if (!shaped.ok()) break;
    auto planned = toolbox.ChipPlanning(shaped->object);
    if (!planned.ok()) break;
    improving = planned->object;
    system.clock().Advance(
        static_cast<SimTime>(planned->work_units + shaped->work_units) *
        kMillisecond);
  }
  times.a_total = system.clock().Now() - t0;

  // DA_B: consumes A's (preliminary or final) floorplan.
  SimTime tb0 = system.clock().Now();
  desc.designer = DesignerId(3);
  desc.workstation = system.AddWorkstation("b");
  auto da_b = system.CreateSubDa(*top, desc);
  CONCORD_RETURN_NOT_OK(system.SetSeedObject(*da_b, seed_obj));
  CONCORD_RETURN_NOT_OK(system.StartDa(*da_b));
  DovId a_result = *system.CurrentVersion(*da_a);
  system.cm().Evaluate(*da_a, a_result).ok();
  CONCORD_RETURN_NOT_OK(
      system.cm().Require(*da_b, *da_a, {"goal_domain"}));
  CONCORD_RETURN_NOT_OK(system.cm().Propagate(*da_a, a_result));
  CONCORD_RETURN_NOT_OK(system.RunDa(*da_b));
  times.b_work = system.clock().Now() - tb0;
  return times;
}

void BM_Cooperation_Turnaround(benchmark::State& state) {
  const int improve_iterations = static_cast<int>(state.range(0));
  double serialized_s = 0;
  double cooperative_s = 0;
  for (auto _ : state) {
    auto times = RunPhases(improve_iterations, 42 + state.iterations());
    benchmark::DoNotOptimize(times);
    if (times.ok()) {
      SimTime serialized = times->a_total + times->b_work;
      SimTime cooperative = std::max(
          times->a_total, times->a_until_prerelease + times->b_work);
      serialized_s = static_cast<double>(serialized) / kSecond;
      cooperative_s = static_cast<double>(cooperative) / kSecond;
    }
  }
  state.counters["improve_iters"] = improve_iterations;
  state.counters["serialized_s"] = serialized_s;
  state.counters["concord_s"] = cooperative_s;
  state.counters["speedup"] =
      cooperative_s > 0 ? serialized_s / cooperative_s : 0;
}
BENCHMARK(BM_Cooperation_Turnaround)
    ->Arg(0)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Withdrawal cost: the cascade of notifications and scope revocations
// when a pre-released DOV is withdrawn, swept over requirer count.
void BM_Cooperation_WithdrawalCascade(benchmark::State& state) {
  const int requirers = static_cast<int>(state.range(0));
  double events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::ConcordSystem system(bench::DefaultConfig());
    auto top = sim::SetupTopLevelDa(&system, "top", 4, 1e9, 0);
    system.StartDa(*top).ok();
    storage::DesignSpecification spec =
        sim::MakeSpec(1e9, 0, vlsi::kDomainFloorplan);
    cooperation::DaDescription desc;
    desc.dot = system.dots().module;
    desc.spec = spec;
    desc.designer = DesignerId(2);
    desc.workstation = system.AddWorkstation("sup");
    auto supporter = system.CreateSubDa(*top, desc);
    system.cm().Start(*supporter).ok();
    // One qualifying DOV via a raw checkin.
    txn::ClientTm& tm = system.client_tm(desc.workstation);
    auto dop = tm.BeginDop(*supporter);
    storage::DesignObject obj(system.dots().module);
    obj.SetAttr(vlsi::kAttrName, "m");
    obj.SetAttr(vlsi::kAttrDomain, vlsi::kDomainFloorplan);
    DovId dov = *tm.Checkin(*dop, obj, {});
    tm.CommitDop(*dop).ok();
    system.cm().NoteCheckin(*supporter, dov);
    for (int i = 0; i < requirers; ++i) {
      cooperation::DaDescription rdesc = desc;
      rdesc.designer = DesignerId(10 + i);
      rdesc.workstation = system.AddWorkstation(IndexedName("r", i));
      auto requirer = system.CreateSubDa(*top, rdesc);
      system.cm().Start(*requirer).ok();
      system.cm().Require(*requirer, *supporter, {"goal_domain"}).ok();
    }
    system.cm().Propagate(*supporter, dov).ok();
    state.ResumeTiming();

    benchmark::DoNotOptimize(
        system.cm().WithdrawPropagation(*supporter, dov));

    state.PauseTiming();
    events = static_cast<double>(system.cm().stats().events_delivered);
    // Re-propagate so the next iteration can withdraw again.
    system.cm().Propagate(*supporter, dov).ok();
    state.ResumeTiming();
  }
  state.counters["requirers"] = requirers;
  state.counters["events_total"] = events;
}
BENCHMARK(BM_Cooperation_WithdrawalCascade)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace concord

BENCHMARK_MAIN();
