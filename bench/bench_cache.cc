// Workstation-side DOV-cache benchmarks: the hot read path of the
// checkout/checkin model. A warm checkout must be served from the
// workstation cache with zero server round-trips (the paper's own
// motivation for handing in-memory contexts between DOPs — LAN hops
// are the expensive part), while a cold/invalidated checkout pays the
// full 2PC + server-TM + repository path. Counters expose cache
// hits/misses/invalidations and the number of real ServerTm checkouts
// so the win is visible, not just implied by ns/op.
//
// CI runs this binary in smoke mode (--benchmark_min_time=0.01) to
// keep the scenarios from bit-rotting.

#include <benchmark/benchmark.h>

#include <memory>
#include <optional>
#include <vector>

#include "bench/bench_tm_env.h"

namespace concord {
namespace {

using bench::TmEnv;

std::unique_ptr<TmEnv> g_env;

void ReportCacheCounters(benchmark::State& state, TmEnv& env) {
  uint64_t hits = 0, misses = 0, from_cache = 0, from_server = 0;
  for (auto& client : env.clients) {
    hits += client->cache().stats().hits;
    misses += client->cache().stats().misses;
    from_cache += client->stats().checkouts_from_cache;
    from_server += client->stats().checkouts_from_server;
  }
  state.counters["cache_hits"] = static_cast<double>(hits);
  state.counters["cache_misses"] = static_cast<double>(misses);
  state.counters["server_checkouts"] =
      static_cast<double>(env.server->stats().checkouts);
  state.counters["hit_rate"] =
      from_cache + from_server == 0
          ? 0.0
          : static_cast<double>(from_cache) /
                static_cast<double>(from_cache + from_server);
  state.counters["lan_messages"] =
      static_cast<double>(env.network.stats().messages_sent);
}

/// Warm path: after the first (server) checkout, every repeated
/// checkout of the same DOV is served from the workstation cache —
/// ns/op here is the served-from-cache latency.
void BM_WarmCheckout(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_env = std::make_unique<TmEnv>(state.threads());
  }
  const int t = state.thread_index();
  // Begin-of-DOP happens inside the loop body's first pass: the
  // benchmark start barrier is the only thing ordering thread 0's env
  // setup before the other threads touch it.
  std::optional<DopId> dop;
  for (auto _ : state) {
    txn::ClientTm& tm = *g_env->clients[t];
    if (!dop) {
      auto begun = tm.BeginDop(DaId(t + 1));
      if (begun.ok()) dop = *begun;
    }
    if (!dop || !tm.Checkout(*dop, g_env->warm_dov[t]).ok()) {
      state.SkipWithError("checkout failed");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    ReportCacheCounters(state, *g_env);
    g_env.reset();
  }
}
BENCHMARK(BM_WarmCheckout)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

/// Cold path for comparison: the entry is invalidated before every
/// checkout, so each one pays 2PC + server-TM + repository — the cost
/// the cache removes from the hot path.
void BM_ColdCheckout(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_env = std::make_unique<TmEnv>(state.threads());
  }
  const int t = state.thread_index();
  std::optional<DopId> dop;
  for (auto _ : state) {
    txn::ClientTm& tm = *g_env->clients[t];
    if (!dop) {
      auto begun = tm.BeginDop(DaId(t + 1));
      if (begun.ok()) dop = *begun;
    }
    tm.cache().Invalidate(g_env->warm_dov[t]);
    if (!dop || !tm.Checkout(*dop, g_env->warm_dov[t]).ok()) {
      state.SkipWithError("checkout failed");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    ReportCacheCounters(state, *g_env);
    g_env.reset();
  }
}
BENCHMARK(BM_ColdCheckout)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

/// Invalidation push fan-out: one withdrawal reaching N subscribed
/// workstations (each drop is one LAN hop + one cache mutation).
void BM_InvalidationFanout(benchmark::State& state) {
  const int workstations = static_cast<int>(state.range(0));
  TmEnv env(workstations);
  // Warm every cache with the same DOV so each push does real work.
  std::vector<Result<DopId>> dops;
  for (int t = 0; t < workstations; ++t) {
    dops.push_back(env.clients[t]->BeginDop(DaId(t + 1)));
  }
  DovId shared = env.Seed(DaId(1), 99);
  for (auto _ : state) {
    state.PauseTiming();
    for (int t = 0; t < workstations; ++t) {
      env.clients[t]->Checkout(*dops[t], shared).ok();
    }
    state.ResumeTiming();
    rpc::InvalidationMessage message;
    message.kind = rpc::InvalidationMessage::Kind::kWithdrawn;
    message.dov = shared;
    message.origin_da = DaId(1);
    env.bus->Publish(message);
  }
  state.SetItemsProcessed(state.iterations() * workstations);
  state.counters["deliveries"] =
      static_cast<double>(env.bus->stats().deliveries);
}
BENCHMARK(BM_InvalidationFanout)->Arg(1)->Arg(8)->Arg(32);

}  // namespace
}  // namespace concord

BENCHMARK_MAIN();
