// Figure 6 — Sample scripts: (a) a partially undetermined script with
// an `open` segment, (b) alternative paths after shape-function
// generation.
//
// Measures the DC-level machinery itself: executor throughput over the
// two figure shapes, constraint admission checking, and the cost of
// the persistent execution log that makes scripts recoverable.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "vlsi/tools.h"
#include "workflow/design_manager.h"

namespace concord::workflow {
namespace {

/// A stub tool runner: instant commits, fresh ids.
ToolRunner StubRunner(uint64_t* counter) {
  return [counter](const std::string&) -> Result<DopOutcome> {
    DopOutcome outcome;
    outcome.committed = true;
    outcome.output = DovId(++*counter);
    return outcome;
  };
}

class OpenPlanDecider : public DecisionMaker {
 public:
  explicit OpenPlanDecider(std::vector<std::string> plan)
      : plan_(std::move(plan)) {}
  size_t ChooseAlternative(const ScriptNode&) override { return choice_; }
  bool ContinueIteration(const ScriptNode&, int) override { return false; }
  std::vector<std::string> PlanOpenSegment(const ScriptNode&) override {
    return plan_;
  }
  void set_choice(size_t c) { choice_ = c; }

 private:
  std::vector<std::string> plan_;
  size_t choice_ = 0;
};

void BM_Script_Fig6a_OpenSegment(benchmark::State& state) {
  const int open_actions = static_cast<int>(state.range(0));
  SimClock clock;
  uint64_t counter = 0;
  std::vector<std::string> plan(open_actions, vlsi::kToolRepartitioning);
  Script script = concord::sim::MakeOpenScript();
  ConstraintSet constraints;
  core::RegisterVlsiDomainConstraints(&constraints);
  OpenPlanDecider decider(plan);
  for (auto _ : state) {
    DesignManager dm(DaId(1), script, &constraints, &clock);
    dm.SetToolRunner(StubRunner(&counter));
    dm.SetDecisionMaker(&decider);
    dm.Start().ok();
    benchmark::DoNotOptimize(dm.RunToCompletion());
  }
  state.counters["open_actions"] = open_actions;
  state.SetItemsProcessed(state.iterations() * (2 + open_actions));
}
BENCHMARK(BM_Script_Fig6a_OpenSegment)->Arg(0)->Arg(4)->Arg(16)->Arg(64);

void BM_Script_Fig6b_Alternatives(benchmark::State& state) {
  const size_t choice = static_cast<size_t>(state.range(0));
  SimClock clock;
  uint64_t counter = 0;
  Script script = concord::sim::MakeAlternativesScript();
  OpenPlanDecider decider({});
  decider.set_choice(choice);
  double dops = 0;
  for (auto _ : state) {
    DesignManager dm(DaId(1), script, nullptr, &clock);
    dm.SetToolRunner(StubRunner(&counter));
    dm.SetDecisionMaker(&decider);
    dm.Start().ok();
    benchmark::DoNotOptimize(dm.RunToCompletion());
    dops = static_cast<double>(dm.CompletedDops().size());
  }
  state.counters["path"] = static_cast<double>(choice);
  state.counters["dops_on_path"] = dops;
}
BENCHMARK(BM_Script_Fig6b_Alternatives)->Arg(0)->Arg(1)->Arg(2);

// Constraint admission checking in isolation, swept over history size.
void BM_Script_ConstraintAdmission(benchmark::State& state) {
  const int history_len = static_cast<int>(state.range(0));
  ConstraintSet constraints;
  core::RegisterVlsiDomainConstraints(&constraints);
  std::vector<std::string> history;
  for (int i = 0; i < history_len; ++i) {
    history.push_back(i % 2 == 0 ? vlsi::kToolStructureSynthesis
                                 : vlsi::kToolRepartitioning);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        constraints.CheckAdmissible(history, vlsi::kToolChipAssembly));
  }
  state.counters["history"] = history_len;
}
BENCHMARK(BM_Script_ConstraintAdmission)->Arg(2)->Arg(16)->Arg(128);

// Recoverability cost: crash + replay of a long script, swept over the
// number of completed DOPs at crash time.
void BM_Script_CrashReplay(benchmark::State& state) {
  const int completed = static_cast<int>(state.range(0));
  SimClock clock;
  uint64_t counter = 0;
  std::vector<std::unique_ptr<ScriptNode>> steps;
  for (int i = 0; i < completed + 8; ++i) {
    steps.push_back(ScriptNode::Dop("tool" + std::to_string(i % 4)));
  }
  Script script("long", ScriptNode::Sequence(std::move(steps)));
  for (auto _ : state) {
    state.PauseTiming();
    DesignManager dm(DaId(1), script, nullptr, &clock);
    dm.SetToolRunner(StubRunner(&counter));
    dm.Start().ok();
    while (dm.CompletedDops().size() < static_cast<size_t>(completed)) {
      dm.Step().ok();
    }
    dm.Crash();
    state.ResumeTiming();
    benchmark::DoNotOptimize(dm.Recover());
  }
  state.counters["replayed_dops"] = completed;
}
BENCHMARK(BM_Script_CrashReplay)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
}  // namespace concord::workflow

BENCHMARK_MAIN();
