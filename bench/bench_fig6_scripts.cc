// Figure 6 — Sample scripts: (a) a partially undetermined script with
// an `open` segment, (b) alternative paths after shape-function
// generation — plus the async script engine those shapes now run on.
//
// Measures the DC-level machinery itself: executor throughput over the
// two figure shapes, constraint admission checking, the cost of the
// persistent execution log that makes scripts recoverable, and — the
// headline — branch-heavy script MAKESPAN versus executor count, now
// that script execution is a task DAG dispatched onto an ExecutorPool
// instead of a serial stack machine.
//
// Besides the google-benchmark sweep, main() runs a fixed gate
// workload — a 16-way kBranch script whose DOP bodies each behave
// like a tool invocation (blocking tool latency plus a CPU slice) —
// once inline (single-thread, the deterministic mode) and once
// on a 4-thread pool, and writes BENCH_script_engine.json. The gated
// ratio (pooled_vs_inline_peak) is PEAK BODY OVERLAP: how many DOP
// bodies the pooled scheduler had in flight at once over the inline
// baseline's 1. On the 16-way branch the dispatch wavefront opens all
// 16 leaves, so the ratio is 16.0 — deterministic parallel capacity,
// not host-dependent wall clock, so the CI gate
// (tools/check_script_engine.sh, min 4.0) cannot flake on small or
// noisy runners. The wall-clock makespans and their speedup are
// reported right next to it for hosts that do have the cores.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "vlsi/tools.h"
#include "workflow/design_manager.h"
#include "workflow/script_scheduler.h"

namespace concord::workflow {
namespace {

/// A stub tool runner: instant commits, fresh ids.
ToolRunner StubRunner(uint64_t* counter) {
  return [counter](const std::string&) -> Result<DopOutcome> {
    DopOutcome outcome;
    outcome.committed = true;
    outcome.output = DovId(++*counter);
    return outcome;
  };
}

class OpenPlanDecider : public DecisionMaker {
 public:
  explicit OpenPlanDecider(std::vector<std::string> plan)
      : plan_(std::move(plan)) {}
  size_t ChooseAlternative(const ScriptNode&) override { return choice_; }
  bool ContinueIteration(const ScriptNode&, int) override { return false; }
  std::vector<std::string> PlanOpenSegment(const ScriptNode&) override {
    return plan_;
  }
  void set_choice(size_t c) { choice_ = c; }

 private:
  std::vector<std::string> plan_;
  size_t choice_ = 0;
};

void BM_Script_Fig6a_OpenSegment(benchmark::State& state) {
  const int open_actions = static_cast<int>(state.range(0));
  SimClock clock;
  uint64_t counter = 0;
  std::vector<std::string> plan(open_actions, vlsi::kToolRepartitioning);
  Script script = concord::sim::MakeOpenScript();
  ConstraintSet constraints;
  core::RegisterVlsiDomainConstraints(&constraints);
  OpenPlanDecider decider(plan);
  for (auto _ : state) {
    DesignManager dm(DaId(1), script, &constraints, &clock);
    dm.SetToolRunner(StubRunner(&counter));
    dm.SetDecisionMaker(&decider);
    dm.Start().ok();
    benchmark::DoNotOptimize(dm.RunToCompletion());
  }
  state.counters["open_actions"] = open_actions;
  state.SetItemsProcessed(state.iterations() * (2 + open_actions));
}
BENCHMARK(BM_Script_Fig6a_OpenSegment)->Arg(0)->Arg(4)->Arg(16)->Arg(64);

void BM_Script_Fig6b_Alternatives(benchmark::State& state) {
  const size_t choice = static_cast<size_t>(state.range(0));
  SimClock clock;
  uint64_t counter = 0;
  Script script = concord::sim::MakeAlternativesScript();
  OpenPlanDecider decider({});
  decider.set_choice(choice);
  double dops = 0;
  for (auto _ : state) {
    DesignManager dm(DaId(1), script, nullptr, &clock);
    dm.SetToolRunner(StubRunner(&counter));
    dm.SetDecisionMaker(&decider);
    dm.Start().ok();
    benchmark::DoNotOptimize(dm.RunToCompletion());
    dops = static_cast<double>(dm.CompletedDops().size());
  }
  state.counters["path"] = static_cast<double>(choice);
  state.counters["dops_on_path"] = dops;
}
BENCHMARK(BM_Script_Fig6b_Alternatives)->Arg(0)->Arg(1)->Arg(2);

// Constraint admission checking in isolation, swept over history size.
void BM_Script_ConstraintAdmission(benchmark::State& state) {
  const int history_len = static_cast<int>(state.range(0));
  ConstraintSet constraints;
  core::RegisterVlsiDomainConstraints(&constraints);
  std::vector<std::string> history;
  for (int i = 0; i < history_len; ++i) {
    history.push_back(i % 2 == 0 ? vlsi::kToolStructureSynthesis
                                 : vlsi::kToolRepartitioning);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        constraints.CheckAdmissible(history, vlsi::kToolChipAssembly));
  }
  state.counters["history"] = history_len;
}
BENCHMARK(BM_Script_ConstraintAdmission)->Arg(2)->Arg(16)->Arg(128);

// Recoverability cost: crash + replay of a long script, swept over the
// number of completed DOPs at crash time.
void BM_Script_CrashReplay(benchmark::State& state) {
  const int completed = static_cast<int>(state.range(0));
  SimClock clock;
  uint64_t counter = 0;
  std::vector<std::unique_ptr<ScriptNode>> steps;
  for (int i = 0; i < completed + 8; ++i) {
    steps.push_back(ScriptNode::Dop("tool" + std::to_string(i % 4)));
  }
  Script script("long", ScriptNode::Sequence(std::move(steps)));
  for (auto _ : state) {
    state.PauseTiming();
    DesignManager dm(DaId(1), script, nullptr, &clock);
    dm.SetToolRunner(StubRunner(&counter));
    dm.Start().ok();
    while (dm.CompletedDops().size() < static_cast<size_t>(completed)) {
      dm.Step().ok();
    }
    dm.Crash();
    state.ResumeTiming();
    benchmark::DoNotOptimize(dm.Recover());
  }
  state.counters["replayed_dops"] = completed;
}
BENCHMARK(BM_Script_CrashReplay)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

// --- Async engine: branch-heavy makespan vs executor count ----------------

constexpr int kBranchWidth = 16;
constexpr int kSpinMicros = 500;

/// A branch-heavy script: synthesis, then `width` independent
/// repartitioning DOPs (one kBranch), then assembly. The branch is the
/// overlap opportunity the executor pool exists for.
Script MakeBranchHeavyScript(int width) {
  std::vector<std::unique_ptr<ScriptNode>> arms;
  for (int i = 0; i < width; ++i) {
    arms.push_back(ScriptNode::Dop(vlsi::kToolRepartitioning));
  }
  std::vector<std::unique_ptr<ScriptNode>> steps;
  steps.push_back(ScriptNode::Dop(vlsi::kToolStructureSynthesis));
  steps.push_back(ScriptNode::Branch(std::move(arms)));
  steps.push_back(ScriptNode::Dop(vlsi::kToolChipAssembly));
  return Script("branch_heavy", ScriptNode::Sequence(std::move(steps)));
}

/// A tool runner shaped like a real design-tool invocation: the DM
/// mostly BLOCKS waiting for the tool (a spawned process / remote
/// server — `micros` of latency, overlappable across executors even on
/// one core) and burns a small CPU slice itself (result parsing,
/// checkin prep). Makespan differences between executor counts are
/// physical, not simulated.
ToolRunner ToolLatencyRunner(uint64_t* counter, int micros) {
  return [counter, micros](const std::string&) -> Result<DopOutcome> {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::microseconds(micros / 10);
    uint64_t sink = 0;
    while (std::chrono::steady_clock::now() < until) {
      sink += 1;
      benchmark::DoNotOptimize(sink);
    }
    DopOutcome outcome;
    outcome.committed = true;
    outcome.output = DovId(++*counter);
    return outcome;
  };
}

void BM_Script_BranchMakespan(benchmark::State& state) {
  const size_t executors = static_cast<size_t>(state.range(0));
  SimClock clock;
  uint64_t counter = 0;
  Script script = MakeBranchHeavyScript(kBranchWidth);
  std::unique_ptr<ExecutorPool> pool;
  if (executors > 1) pool = std::make_unique<ExecutorPool>(executors);
  double peak = 1;
  for (auto _ : state) {
    DesignManager dm(DaId(1), script, nullptr, &clock);
    dm.SetToolRunner(ToolLatencyRunner(&counter, kSpinMicros));
    if (pool) dm.SetExecutorPool(pool.get());
    dm.Start().ok();
    benchmark::DoNotOptimize(dm.RunToCompletion());
    peak = static_cast<double>(dm.scheduler().peak_concurrency());
  }
  state.counters["executors"] = static_cast<double>(executors);
  state.counters["peak_in_flight"] = peak;
  state.SetItemsProcessed(state.iterations() * (kBranchWidth + 2));
}
BENCHMARK(BM_Script_BranchMakespan)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// --- Fixed gate workload + JSON emission ----------------------------------

struct EngineGateResult {
  double makespan_ms = 0;
  uint64_t peak_in_flight = 0;
  uint64_t dops_committed = 0;
};

/// One branch-heavy run at the given executor count (0 = no pool, the
/// deterministic inline mode). Takes the best of `repeats` runs so a
/// descheduled warm-up pass cannot pollute the reported makespan.
EngineGateResult RunEngineGate(size_t executors, int repeats) {
  SimClock clock;
  uint64_t counter = 0;
  Script script = MakeBranchHeavyScript(kBranchWidth);
  std::unique_ptr<ExecutorPool> pool;
  if (executors > 1) pool = std::make_unique<ExecutorPool>(executors);
  EngineGateResult result;
  result.makespan_ms = 1e18;
  for (int r = 0; r < repeats; ++r) {
    DesignManager dm(DaId(1), script, nullptr, &clock);
    dm.SetToolRunner(ToolLatencyRunner(&counter, kSpinMicros));
    if (pool) dm.SetExecutorPool(pool.get());
    dm.Start().ok();
    auto start = std::chrono::steady_clock::now();
    dm.RunToCompletion().ok();
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    if (ms < result.makespan_ms) result.makespan_ms = ms;
    result.peak_in_flight = dm.scheduler().peak_concurrency();
    result.dops_committed = dm.CompletedDops().size();
  }
  return result;
}

int EmitEngineGateJson(const char* path) {
  const int repeats = 5;
  // Warm-up absorbs first-touch costs (allocator, thread spin-up).
  RunEngineGate(/*executors=*/4, 1);
  EngineGateResult x1 = RunEngineGate(/*executors=*/0, repeats);
  EngineGateResult x4 = RunEngineGate(/*executors=*/4, repeats);
  // The gated ratio: peak overlapped DOP bodies, pooled over inline —
  // deterministic dispatch capacity, not host-dependent wall clock
  // (see the file header).
  double peak_ratio =
      x1.peak_in_flight > 0
          ? static_cast<double>(x4.peak_in_flight) /
                static_cast<double>(x1.peak_in_flight)
          : 0.0;
  double speedup =
      x4.makespan_ms > 0 ? x1.makespan_ms / x4.makespan_ms : 0.0;

  char buffer[64];
  std::string json;
  json += "{\n";
  json += "  \"bench\": \"script_engine\",\n";
  json += "  \"script\": \"branch_heavy\",\n";
  json += "  \"branch_width\": " + std::to_string(kBranchWidth) + ",\n";
  json += "  \"tool_latency_us_per_dop\": " + std::to_string(kSpinMicros) + ",\n";
  std::snprintf(buffer, sizeof(buffer), "%.3f", x1.makespan_ms);
  json += "  \"inline_makespan_ms\": " + std::string(buffer) + ",\n";
  std::snprintf(buffer, sizeof(buffer), "%.3f", x4.makespan_ms);
  json += "  \"x4_makespan_ms\": " + std::string(buffer) + ",\n";
  std::snprintf(buffer, sizeof(buffer), "%.2f", speedup);
  json += "  \"x4_speedup\": " + std::string(buffer) + ",\n";
  json += "  \"inline_peak_in_flight\": " +
          std::to_string(x1.peak_in_flight) + ",\n";
  json += "  \"x4_peak_in_flight\": " + std::to_string(x4.peak_in_flight) +
          ",\n";
  json += "  \"dops_per_run\": " + std::to_string(x4.dops_committed) + ",\n";
  // The gate key CI greps for — keep it on its own line.
  std::snprintf(buffer, sizeof(buffer), "%.3f", peak_ratio);
  json += "  \"pooled_vs_inline_peak\": " + std::string(buffer) + "\n";
  json += "}\n";

  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("%s", json.c_str());
  return 0;
}

}  // namespace
}  // namespace concord::workflow

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return concord::workflow::EmitEngineGateJson("BENCH_script_engine.json");
}
