// Concurrent checkout/modify/checkin throughput on the sharded
// repository. Each benchmark thread models one designer's DA running
// its own derivation chain: checkout the current version (derivation
// lock + read), modify it (tool work on the design object), and check
// the successor back in (short repository transaction + scope lock).
//
// The modify step carries a small real tool latency (designers spend
// most wall time in tools, not in the repository), so the number that
// matters is aggregate checkins/second across the sweep: it rises from
// 1 → 4 → 8 threads as long as the storage core overlaps designers
// instead of serializing them — on any machine, including single-core
// CI boxes, since the latency overlaps even without extra cores.

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_tm_env.h"
#include "common/clock.h"
#include "storage/repository.h"
#include "txn/lock_manager.h"

namespace concord {
namespace {

constexpr int kMaxThreads = 64;

struct CheckoutEnv {
  SimClock clock;
  storage::Repository repo{&clock};
  txn::LockManager locks;
  DotId dot;
  // Per-thread head of the designer's derivation chain.
  std::vector<DovId> head = std::vector<DovId>(kMaxThreads);

  CheckoutEnv() {
    storage::DesignObjectType* type = repo.schema().DefineType("cell");
    type->AddAttr({"value", storage::AttrType::kInt, true, 0.0, 1e9});
    type->AddAttr({"revision", storage::AttrType::kInt, true, 0.0, 1e9});
    dot = type->id();
  }

  /// Installs the initial DOV of thread `t`'s DA.
  void SeedThread(int t) {
    DaId da(t + 1);
    TxnId txn = repo.Begin();
    storage::DovRecord record = MakeVersion(da, {}, 0);
    head[t] = record.id;
    repo.Put(txn, std::move(record)).ok();
    repo.Commit(txn).ok();
    locks.SetScopeOwner(head[t], da);
  }

  storage::DovRecord MakeVersion(DaId da, std::vector<DovId> preds,
                                 int64_t revision) {
    storage::DovRecord record;
    record.id = repo.NextDovId();
    record.owner_da = da;
    record.type = dot;
    record.data = storage::DesignObject(dot);
    record.data.SetAttr("value", static_cast<int64_t>(da.value()));
    record.data.SetAttr("revision", revision);
    record.predecessors = std::move(preds);
    record.created_at = clock.Now();
    return record;
  }
};

std::unique_ptr<CheckoutEnv> g_env;

/// One designer iteration: checkout → modify → checkin.
bool CheckoutModifyCheckin(CheckoutEnv& env, int t, int64_t revision) {
  DaId da(t + 1);
  DovId current = env.head[t];

  // Checkout: take the derivation lock so nobody else can derive from
  // this version concurrently, then read it.
  if (!env.locks.AcquireDerivation(current, da).ok()) return false;
  env.locks.AcquireShort(current);
  auto checked_out = env.repo.Get(current);
  env.locks.ReleaseShort(current);
  if (!checked_out.ok()) return false;

  // Modify: the "tool run" — derive the successor from the checked-out
  // object. ContentHash stands in for design-tool computation and the
  // sleep for the tool's wall-clock latency; both run outside every
  // repository lock, so concurrent designers overlap here.
  storage::DovRecord next =
      env.MakeVersion(da, {current}, revision);
  benchmark::DoNotOptimize((*checked_out).data.ContentHash());
  benchmark::DoNotOptimize(next.data.ContentHash());
  std::this_thread::sleep_for(std::chrono::microseconds(50));

  // Checkin: one short repository transaction, then publish the scope
  // lock and drop the derivation lock.
  DovId next_id = next.id;
  TxnId txn = env.repo.Begin();
  if (!env.repo.Put(txn, std::move(next)).ok()) return false;
  if (!env.repo.Commit(txn).ok()) return false;
  env.locks.SetScopeOwner(next_id, da);
  env.locks.ReleaseDerivation(current, da).ok();
  env.head[t] = next_id;
  return true;
}

void BM_ConcurrentCheckoutCheckin(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_env = std::make_unique<CheckoutEnv>();
    for (int t = 0; t < state.threads(); ++t) g_env->SeedThread(t);
  }
  // benchmark's start barrier orders thread 0's setup before all
  // threads enter the loop.
  int64_t revision = 1;
  const int t = state.thread_index();
  for (auto _ : state) {
    if (!CheckoutModifyCheckin(*g_env, t, revision % 1000000)) {
      state.SkipWithError("checkout/checkin failed");
      break;
    }
    ++revision;
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["dovs"] =
        static_cast<double>(g_env->repo.stats().dovs_written);
    state.counters["wal_flushes"] =
        static_cast<double>(g_env->repo.wal().flushes());
    g_env.reset();
  }
}
BENCHMARK(BM_ConcurrentCheckoutCheckin)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

/// Worst case: every designer hammers the same hot version, so the
/// derivation lock serializes them and conflicts show up in stats —
/// the dissemination-control cost, not a scalability bug.
void BM_ConcurrentCheckout_HotSpot(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_env = std::make_unique<CheckoutEnv>();
    g_env->SeedThread(0);
  }
  const DaId da(state.thread_index() + 1);
  uint64_t conflicts = 0;
  for (auto _ : state) {
    DovId hot = g_env->head[0];
    if (g_env->locks.AcquireDerivation(hot, da).ok()) {
      benchmark::DoNotOptimize(g_env->repo.Get(hot));
      g_env->locks.ReleaseDerivation(hot, da).ok();
    } else {
      ++conflicts;
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["conflicts"] =
        static_cast<double>(g_env->locks.stats().derivation_conflicts);
    g_env.reset();
  }
  benchmark::DoNotOptimize(conflicts);
}
BENCHMARK(BM_ConcurrentCheckout_HotSpot)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// --- Full TM stack with the workstation DOV cache -------------------------

/// Designer mix over the full client-TM/server-TM stack: each thread's
/// DA re-reads its stable library input every iteration (warm after the
/// first fetch) and periodically derives a new version from it
/// (checkin + fresh checkout with a derivation lock — both forced
/// server trips). The hit_rate / server_checkouts counters show how
/// much of the hot read path the workstation DOV cache takes off the
/// server at equal correctness. The stack assembly is shared with
/// bench_cache (bench/bench_tm_env.h).
using bench::TmEnv;

std::unique_ptr<TmEnv> g_tm_env;

void BM_CheckoutMix_ClientTmCache(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_tm_env = std::make_unique<TmEnv>(state.threads());
  }
  const int t = state.thread_index();
  const DaId da(t + 1);
  std::optional<DopId> dop;
  int64_t iteration = 0;
  for (auto _ : state) {
    txn::ClientTm& tm = *g_tm_env->clients[t];
    if (!dop) {
      auto begun = tm.BeginDop(da);
      if (begun.ok()) dop = *begun;
    }
    DovId input = g_tm_env->warm_dov[t];
    // Hot path: re-read the library input (cache hit after the first).
    if (!dop || !tm.Checkout(*dop, input).ok()) {
      state.SkipWithError("checkout failed");
      break;
    }
    // Every 16th iteration: derive a new version — checkin plus a
    // derivation-locked checkout of it, both real server interactions.
    if (++iteration % 16 == 0) {
      storage::DesignObject obj(g_tm_env->dot);
      obj.SetAttr("value", iteration % 1000000);
      auto derived = tm.Checkin(*dop, std::move(obj), {input});
      if (!derived.ok() ||
          !tm.Checkout(*dop, *derived, /*take_derivation_lock=*/true).ok()) {
        state.SkipWithError("checkin/derive failed");
        break;
      }
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    uint64_t from_cache = 0, from_server = 0;
    for (auto& client : g_tm_env->clients) {
      from_cache += client->stats().checkouts_from_cache;
      from_server += client->stats().checkouts_from_server;
    }
    state.counters["server_checkouts"] =
        static_cast<double>(g_tm_env->server->stats().checkouts);
    state.counters["cache_checkouts"] = static_cast<double>(from_cache);
    state.counters["hit_rate"] =
        from_cache + from_server == 0
            ? 0.0
            : static_cast<double>(from_cache) /
                  static_cast<double>(from_cache + from_server);
    // Every server trip is now a countable envelope on the shared
    // transactional-RPC channel.
    state.counters["rpc_calls"] =
        static_cast<double>(g_tm_env->rpc.stats().calls);
    g_tm_env.reset();
  }
}
BENCHMARK(BM_CheckoutMix_ClientTmCache)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

/// Server round trips per checkin with the BatchRequest envelope
/// collapsing checkin + derivation-lock release into one trip
/// (batching=1) vs the sequential pair (batching=0). The full DOP
/// cycle is begin + checkin/commit, so the floor is 2 envelopes per
/// checkin batched and 3 unbatched.
void BM_CheckinCommit_Batching(benchmark::State& state) {
  const bool batching = state.range(0) != 0;
  TmEnv env(1);
  txn::ClientTm& tm = *env.clients[0];
  tm.set_batching(batching);
  const DaId da(1);
  int64_t revision = 0;
  for (auto _ : state) {
    auto dop = tm.BeginDop(da);
    if (!dop.ok()) {
      state.SkipWithError("begin failed");
      break;
    }
    storage::DesignObject obj(env.dot);
    obj.SetAttr("value", ++revision % 1000000);
    if (!tm.CheckinCommit(*dop, std::move(obj), {env.warm_dov[0]}).ok()) {
      state.SkipWithError("checkin/commit failed");
      break;
    }
  }
  uint64_t checkins = env.server->stats().checkins;
  state.counters["round_trips_per_checkin"] =
      checkins == 0 ? 0.0
                    : static_cast<double>(env.rpc.stats().calls.load()) /
                          static_cast<double>(checkins);
  state.counters["lan_msgs"] =
      static_cast<double>(env.network.stats().messages_sent);
  state.SetLabel(batching ? "batched_envelope" : "sequential_envelopes");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CheckinCommit_Batching)->Arg(0)->Arg(1)->UseRealTime();

}  // namespace
}  // namespace concord

BENCHMARK_MAIN();
