// Transport round-trip microbenchmarks: what does the real socket
// transport cost per RPC, and how does it compare to the zero-copy
// simulated path the deterministic tests use?
//
// Three legs, same 64-byte echo handler:
//   BM_RttUnixSocket  net::RpcChannel -> net::RpcServer over a
//                     Unix-domain socket (the single-host deployment)
//   BM_RttTcpLoopback same over TCP 127.0.0.1 (the LAN deployment)
//   BM_RttSimulated   rpc::TransactionalRpc over the in-memory Network
//                     (no syscalls — the floor the socket legs chase)
//
// main() re-times the three legs outside google-benchmark and writes
// BENCH_transport.json so CI can track median RTT per leg.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "net/address.h"
#include "net/rpc_client.h"
#include "net/rpc_server.h"
#include "rpc/network.h"
#include "rpc/transactional_rpc.h"

namespace concord {
namespace {

std::string BenchSocketPath(const char* tag) {
  return "/tmp/concord_bench_" + std::string(tag) + "_" +
         std::to_string(getpid()) + ".sock";
}

Result<std::string> EchoHandler(const std::string& request) {
  return request;
}

/// One server + one channel, echoing `payload_bytes` request payloads.
struct SocketRig {
  std::unique_ptr<net::RpcServer> server;
  std::unique_ptr<net::RpcChannel> channel;
  std::string payload;

  SocketRig(net::Address listen, size_t payload_bytes)
      : payload(payload_bytes, 'x') {
    server = std::make_unique<net::RpcServer>(std::move(listen));
    server->RegisterMethod("bench/echo", EchoHandler);
    Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "bench server start failed: %s\n",
                   started.ToString().c_str());
      std::abort();
    }
    channel = std::make_unique<net::RpcChannel>(/*client_id=*/1,
                                                server->bound_address());
  }

  ~SocketRig() {
    channel->Shutdown();
    server->Shutdown();
  }

  void Roundtrip() {
    auto reply = channel->Call("bench/echo", payload);
    if (!reply.ok() || reply->size() != payload.size()) {
      std::fprintf(stderr, "bench echo failed\n");
      std::abort();
    }
  }
};

void BM_RttUnixSocket(benchmark::State& state) {
  SocketRig rig(net::Address::Unix(BenchSocketPath("uds")),
                static_cast<size_t>(state.range(0)));
  for (auto _ : state) rig.Roundtrip();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RttUnixSocket)->Arg(64)->Arg(4096)->UseRealTime();

void BM_RttTcpLoopback(benchmark::State& state) {
  SocketRig rig(net::Address::Tcp("127.0.0.1", 0),
                static_cast<size_t>(state.range(0)));
  for (auto _ : state) rig.Roundtrip();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RttTcpLoopback)->Arg(64)->Arg(4096)->UseRealTime();

void BM_RttSimulated(benchmark::State& state) {
  SimClock clock;
  rpc::Network network(&clock, 42);
  rpc::TransactionalRpc rpc(&network);
  NodeId server = network.AddNode("server");
  NodeId client = network.AddNode("client");
  rpc.RegisterHandler(server, "bench/echo", EchoHandler);
  std::string payload(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    auto reply = rpc.Call(client, server, "bench/echo", payload);
    benchmark::DoNotOptimize(reply);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RttSimulated)->Arg(64)->Arg(4096)->UseRealTime();

// --- JSON gate emission ----------------------------------------------------

double MedianRttUs(const std::function<void()>& roundtrip, int iters) {
  std::vector<double> samples;
  samples.reserve(iters);
  for (int i = 0; i < iters; ++i) {
    auto start = std::chrono::steady_clock::now();
    roundtrip();
    auto end = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::micro>(end - start).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

int EmitGateJson(const char* path) {
  constexpr int kIters = 2000;
  constexpr size_t kPayload = 64;

  double uds_us;
  double tcp_us;
  {
    SocketRig rig(net::Address::Unix(BenchSocketPath("json_uds")), kPayload);
    for (int i = 0; i < 100; ++i) rig.Roundtrip();  // warm the connection
    uds_us = MedianRttUs([&] { rig.Roundtrip(); }, kIters);
  }
  {
    SocketRig rig(net::Address::Tcp("127.0.0.1", 0), kPayload);
    for (int i = 0; i < 100; ++i) rig.Roundtrip();
    tcp_us = MedianRttUs([&] { rig.Roundtrip(); }, kIters);
  }

  SimClock clock;
  rpc::Network network(&clock, 42);
  rpc::TransactionalRpc rpc(&network);
  NodeId server = network.AddNode("server");
  NodeId client = network.AddNode("client");
  rpc.RegisterHandler(server, "bench/echo", EchoHandler);
  std::string payload(kPayload, 'x');
  double sim_us = MedianRttUs(
      [&] { rpc.Call(client, server, "bench/echo", payload).ok(); }, kIters);

  char buffer[64];
  std::string json = "{\n";
  json += "  \"payload_bytes\": " + std::to_string(kPayload) + ",\n";
  json += "  \"iters\": " + std::to_string(kIters) + ",\n";
  std::snprintf(buffer, sizeof(buffer), "%.2f", uds_us);
  json += "  \"unix_socket_rtt_us_p50\": " + std::string(buffer) + ",\n";
  std::snprintf(buffer, sizeof(buffer), "%.2f", tcp_us);
  json += "  \"tcp_loopback_rtt_us_p50\": " + std::string(buffer) + ",\n";
  std::snprintf(buffer, sizeof(buffer), "%.2f", sim_us);
  json += "  \"simulated_rtt_us_p50\": " + std::string(buffer) + "\n";
  json += "}\n";

  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("%s", json.c_str());
  return 0;
}

}  // namespace
}  // namespace concord

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return concord::EmitGateJson("BENCH_transport.json");
}
