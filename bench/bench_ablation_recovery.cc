// Ablation A2 — §5.2 recovery points ("fire-walls inside a DOP that
// limit the scope of work lost in case of a failure").
//
// Sweeps the automatic recovery-point interval against crash frequency
// and reports (a) work lost at a crash and (b) the overhead of taking
// recovery points (their count x the context-copy cost), exposing the
// paper's implicit trade-off.

#include <benchmark/benchmark.h>

#include "common/strings.h"
#include "bench/bench_util.h"

namespace concord {
namespace {

void BM_Recovery_LossVsInterval(benchmark::State& state) {
  const uint64_t interval = static_cast<uint64_t>(state.range(0));
  // 65 tool slices of 29 units; deliberately not commensurate with the
  // swept intervals so partial loss is visible.
  const uint64_t total_work = 65 * 29;
  double lost = 0;
  double rps = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::ConcordSystem system(bench::DefaultConfig());
    NodeId ws = system.AddWorkstation("ws");
    txn::ClientTm& tm = system.client_tm(ws);
    tm.set_auto_recovery_interval(interval);
    auto dop = tm.BeginDop(DaId(1));
    for (uint64_t done = 0; done < total_work; done += 29) {
      tm.DoWork(*dop, 29).ok();
    }
    tm.Crash();
    state.ResumeTiming();
    benchmark::DoNotOptimize(tm.Recover());
    state.PauseTiming();
    lost = static_cast<double>(tm.stats().work_units_lost);
    rps = static_cast<double>(tm.stats().recovery_points_taken);
    state.ResumeTiming();
  }
  state.counters["interval"] = static_cast<double>(interval);
  state.counters["work_lost"] = lost;
  state.counters["recovery_points"] = rps;
  state.counters["loss_fraction"] = lost / static_cast<double>(total_work);
}
BENCHMARK(BM_Recovery_LossVsInterval)
    ->Arg(0)
    ->Arg(999)
    ->Arg(247)
    ->Arg(53);

// Recovery-point overhead: cost of persisting the DOP context as its
// size grows (checked-out versions + workspace objects).
void BM_Recovery_PointCostVsContextSize(benchmark::State& state) {
  const int workspace_objects = static_cast<int>(state.range(0));
  core::ConcordSystem system(bench::DefaultConfig());
  NodeId ws = system.AddWorkstation("ws");
  txn::ClientTm& tm = system.client_tm(ws);
  auto dop = tm.BeginDop(DaId(1));
  for (int i = 0; i < workspace_objects; ++i) {
    storage::DesignObject obj(system.dots().module);
    obj.SetAttr(vlsi::kAttrName, "obj" + std::to_string(i));
    obj.SetAttr(vlsi::kAttrDomain, vlsi::kDomainStructure);
    for (int a = 0; a < 8; ++a) {
      obj.SetAttr(IndexedName("f", a), static_cast<double>(a));
    }
    // Each workspace object also carries children (a small subtree).
    for (int c = 0; c < 4; ++c) {
      obj.AddChild(storage::DesignObject(system.dots().block));
    }
    tm.PutWorkspace(*dop, IndexedName("w", i), std::move(obj)).ok();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tm.TakeRecoveryPoint(*dop));
  }
  state.counters["workspace_objects"] = workspace_objects;
}
BENCHMARK(BM_Recovery_PointCostVsContextSize)
    ->Arg(1)
    ->Arg(16)
    ->Arg(128)
    ->Unit(benchmark::kMicrosecond);

// Savepoint (designer-visible) vs recovery point (system) cost — both
// snapshot the context; savepoints accumulate.
void BM_Recovery_SavepointAccumulation(benchmark::State& state) {
  core::ConcordSystem system(bench::DefaultConfig());
  NodeId ws = system.AddWorkstation("ws");
  txn::ClientTm& tm = system.client_tm(ws);
  auto dop = tm.BeginDop(DaId(1));
  storage::DesignObject obj(system.dots().module);
  obj.SetAttr(vlsi::kAttrName, "m");
  obj.SetAttr(vlsi::kAttrDomain, vlsi::kDomainStructure);
  tm.PutWorkspace(*dop, "w", obj).ok();
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tm.Save(*dop, "sp" + std::to_string(i++)));
  }
  state.counters["savepoints"] = static_cast<double>(i);
}
BENCHMARK(BM_Recovery_SavepointAccumulation);

}  // namespace
}  // namespace concord

BENCHMARK_MAIN();
