// Figure 5 — The delegation scenario within chip planning.
//
// Runs the full Fig. 5 story end to end: DA1 plans cell 0, delegates
// the placed subcells to DA2..DAn, one sub-DA reports
// Sub_DA_Impossible_Specification, the super-DA re-balances the area
// budgets (the DA2/DA3 resolution of Sect. 4.1), the subs re-plan and
// the hierarchy terminates. Swept over chip complexity, with and
// without the impossible-spec episode.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace concord {
namespace {

void BM_Delegation_Scenario(benchmark::State& state) {
  const int complexity = static_cast<int>(state.range(0));
  const bool squeeze = state.range(1) != 0;
  double subs = 0;
  double replans = 0;
  double events = 0;
  double sim_time_s = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::ConcordSystem system(
        bench::DefaultConfig(42 + state.iterations()));
    sim::MetricsCollector metrics;
    state.ResumeTiming();

    auto result = sim::RunDelegationScenario(&system, complexity, squeeze,
                                             &metrics);
    benchmark::DoNotOptimize(result);

    state.PauseTiming();
    if (result.ok()) {
      subs = static_cast<double>(result->subs.size());
      replans = result->replans;
    }
    events = static_cast<double>(system.cm().stats().events_delivered);
    sim_time_s = static_cast<double>(system.clock().Now()) / kSecond;
    state.ResumeTiming();
  }
  state.counters["complexity"] = complexity;
  state.counters["sub_das"] = subs;
  state.counters["replans"] = replans;
  state.counters["coop_events"] = events;
  state.counters["sim_design_time_s"] = sim_time_s;
  state.SetLabel(squeeze ? "with_impossible_spec" : "smooth");
}
BENCHMARK(BM_Delegation_Scenario)
    ->Args({6, 0})
    ->Args({6, 1})
    ->Args({10, 0})
    ->Args({10, 1})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace concord

BENCHMARK_MAIN();
