// Figure 4 — Design activities and DA hierarchies.
//
// Regenerates the figure's structure dynamically: Init_Design followed
// by recursive Create_Sub_DA, swept over fan-out and depth. Counters
// report hierarchy size and the CM's persistence cost (every DA
// creation is durably recorded in the server DBMS).

#include <benchmark/benchmark.h>

#include "common/strings.h"
#include "bench/bench_util.h"

namespace concord {
namespace {

cooperation::DaDescription Desc(core::ConcordSystem& /*system*/, DotId dot,
                                NodeId ws) {
  cooperation::DaDescription desc;
  desc.dot = dot;
  desc.designer = DesignerId(1);
  desc.workstation = ws;
  return desc;
}

/// Builds a DA tree of the given fan-out and depth under `parent`.
void BuildTree(core::ConcordSystem& system, DaId parent, NodeId ws,
               int fanout, int depth) {
  if (depth == 0) return;
  for (int i = 0; i < fanout; ++i) {
    auto sub = system.CreateSubDa(
        parent, Desc(system, system.dots().module, ws));
    if (!sub.ok()) return;
    system.cm().Start(*sub).ok();
    BuildTree(system, *sub, ws, fanout, depth - 1);
  }
}

void BM_DaHierarchy_Build(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  const int depth = static_cast<int>(state.range(1));
  double das = 0;
  double meta_writes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::ConcordSystem system(bench::DefaultConfig());
    NodeId ws = system.AddWorkstation("ws");
    auto top = system.InitDesign(Desc(system, system.dots().chip, ws));
    system.cm().Start(*top).ok();
    state.ResumeTiming();

    BuildTree(system, *top, ws, fanout, depth);

    state.PauseTiming();
    das = static_cast<double>(system.cm().AllDas().size());
    meta_writes =
        static_cast<double>(system.repository().stats().txns_committed);
    state.ResumeTiming();
  }
  state.counters["fanout"] = fanout;
  state.counters["depth"] = depth;
  state.counters["das"] = das;
  state.counters["cm_persist_txns"] = meta_writes;
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(das));
}
BENCHMARK(BM_DaHierarchy_Build)
    ->Args({2, 2})
    ->Args({4, 2})
    ->Args({2, 4})
    ->Args({4, 3})
    ->Args({8, 2})
    ->Unit(benchmark::kMillisecond);

// Overlapping DOTs (Fig. 4b): several sub-DAs delegated for the same
// subproblem — "delegate a single design task several times and choose
// the best of the delivered solutions".
void BM_DaHierarchy_CompetingDelegation(benchmark::State& state) {
  const int competitors = static_cast<int>(state.range(0));
  double best_area = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::ConcordSystem system(bench::DefaultConfig(7 + state.iterations()));
    NodeId ws = system.AddWorkstation("ws");
    auto top = system.InitDesign(Desc(system, system.dots().chip, ws));
    system.cm().Start(*top).ok();
    state.ResumeTiming();

    // The same task (same spec) delegated `competitors` times.
    double best = 1e18;
    DaId best_sub;
    std::vector<DaId> subs;
    for (int i = 0; i < competitors; ++i) {
      cooperation::DaDescription desc =
          Desc(system, system.dots().module,
               system.AddWorkstation(IndexedName("c", i)));
      desc.spec = sim::MakeSpec(1e9, 0, vlsi::kDomainFloorplan);
      desc.designer = DesignerId(10 + i);
      desc.dc = sim::MakeChipPlanningScript(1);
      auto sub = system.CreateSubDa(*top, desc);
      storage::DesignObject seed(system.dots().module);
      seed.SetAttr(vlsi::kAttrName, "m");
      seed.SetAttr(vlsi::kAttrDomain, vlsi::kDomainBehavior);
      seed.SetAttr(vlsi::kAttrBehavior,
                   "MODULE m COMPLEXITY " + std::to_string(6 + i));
      seed.SetAttr(vlsi::kAttrPinCount, int64_t{8});
      system.SetSeedObject(*sub, seed).ok();
      system.StartDa(*sub).ok();
      system.RunDa(*sub).ok();
      auto current = system.CurrentVersion(*sub);
      if (current.ok()) {
        auto quality = system.cm().Evaluate(*sub, *current);
        auto record = system.repository().Get(*current);
        double area = record->data.GetNumeric(vlsi::kAttrArea).value_or(1e18);
        if (quality.ok() && quality->is_final() && area < best) {
          best = area;
          best_sub = *sub;
        }
      }
      subs.push_back(*sub);
    }
    // Keep the winner, cancel the rest.
    for (DaId sub : subs) {
      if (sub == best_sub) {
        system.cm().SubDaReadyToCommit(sub).ok();
      }
      system.cm().TerminateSubDa(*top, sub).ok();
    }
    best_area = best;
    benchmark::DoNotOptimize(best);
  }
  state.counters["competitors"] = competitors;
  state.counters["best_area"] = best_area;
}
BENCHMARK(BM_DaHierarchy_CompetingDelegation)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace concord

BENCHMARK_MAIN();
