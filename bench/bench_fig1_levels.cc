// Figure 1 — Abstraction levels of the CONCORD model.
//
// The paper's Fig. 1 is the layered architecture: AC (cooperation) over
// DC (work flow) over TE (ACID tool transactions) over the versioned
// repository. This bench regenerates the figure operationally: it
// measures the cost of one representative operation at each level, so
// the layering is visible as a cost hierarchy (repository op < TE op <
// DC step < AC cooperation op < level-spanning DOP).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "vlsi/schema.h"
#include "vlsi/tools.h"

namespace concord {
namespace {

// Repository level: one short transaction writing one DOV.
void BM_Level_Repository_CommitDov(benchmark::State& state) {
  SimClock clock;
  storage::Repository repo(&clock);
  vlsi::VlsiDots dots = vlsi::RegisterVlsiSchema(&repo.schema());
  storage::DesignObject obj = vlsi::MakeBehavioralChip(dots, "c", 4);
  for (auto _ : state) {
    TxnId txn = repo.Begin();
    storage::DovRecord record;
    record.id = repo.NextDovId();
    record.owner_da = DaId(1);
    record.type = dots.chip;
    record.data = obj;
    benchmark::DoNotOptimize(repo.Put(txn, record));
    benchmark::DoNotOptimize(repo.Commit(txn));
  }
  state.counters["wal_records"] =
      static_cast<double>(repo.wal().total_appended());
}
BENCHMARK(BM_Level_Repository_CommitDov);

// TE level: checkout + checkin under 2PC with the server-TM.
void BM_Level_TE_CheckoutCheckin(benchmark::State& state) {
  core::ConcordSystem system(bench::DefaultConfig());
  auto da = sim::SetupTopLevelDa(&system, "c", 4, 1e9, 0);
  system.StartDa(*da).ok();
  system.RunDa(*da).ok();
  DovId input = *system.CurrentVersion(*da);
  NodeId ws = (*system.cm().GetDa(*da))->workstation;
  txn::ClientTm& tm = system.client_tm(ws);
  storage::DesignObject obj =
      (*system.repository().Get(input)).data;
  for (auto _ : state) {
    auto dop = tm.BeginDop(*da);
    tm.Checkout(*dop, input).ok();
    auto out = tm.Checkin(*dop, obj, {input});
    tm.CommitDop(*dop).ok();
    benchmark::DoNotOptimize(out);
  }
  state.counters["two_pc_protocols"] =
      static_cast<double>(tm.two_pc_stats().protocols_run);
}
BENCHMARK(BM_Level_TE_CheckoutCheckin);

// DC level: one script step (structural advance, no tool).
void BM_Level_DC_ScriptStep(benchmark::State& state) {
  SimClock clock;
  std::vector<std::unique_ptr<workflow::ScriptNode>> steps;
  for (int i = 0; i < 64; ++i) {
    steps.push_back(workflow::ScriptNode::DaOp("Evaluate"));
  }
  workflow::Script script(
      "steps", workflow::ScriptNode::Sequence(std::move(steps)));
  for (auto _ : state) {
    workflow::DesignManager dm(DaId(1), script, nullptr, &clock);
    dm.SetDaOpRunner([](const std::string&) { return Status::OK(); });
    dm.Start().ok();
    benchmark::DoNotOptimize(dm.RunToCompletion());
  }
  state.SetItemsProcessed(state.iterations() * 65);  // 64 ops + frames
}
BENCHMARK(BM_Level_DC_ScriptStep);

// AC level: one cooperation operation through the CM (Require +
// Propagate pair including persistence).
void BM_Level_AC_RequirePropagate(benchmark::State& state) {
  core::ConcordSystem system(bench::DefaultConfig());
  auto top = sim::SetupTopLevelDa(&system, "c", 4, 1e9, 0);
  system.StartDa(*top).ok();
  system.RunDa(*top).ok();

  storage::DesignSpecification spec =
      sim::MakeSpec(1e9, 0, vlsi::kDomainFloorplan);
  cooperation::DaDescription desc;
  desc.dot = system.dots().module;
  desc.spec = spec;
  desc.designer = DesignerId(2);
  desc.workstation = system.AddWorkstation("sup");
  auto supporter = system.CreateSubDa(*top, desc);
  desc.workstation = system.AddWorkstation("req");
  auto requirer = system.CreateSubDa(*top, desc);
  system.cm().Start(*supporter).ok();
  system.cm().Start(*requirer).ok();

  // Give the supporter one qualifying DOV via a raw checkin.
  txn::ClientTm& tm = system.client_tm((*system.cm().GetDa(*supporter))->workstation);
  auto dop = tm.BeginDop(*supporter);
  storage::DesignObject obj(system.dots().module);
  obj.SetAttr(vlsi::kAttrName, "m");
  obj.SetAttr(vlsi::kAttrDomain, vlsi::kDomainFloorplan);
  obj.SetAttr(vlsi::kAttrArea, 10.0);
  DovId dov = *tm.Checkin(*dop, obj, {});
  tm.CommitDop(*dop).ok();
  system.cm().NoteCheckin(*supporter, dov);

  system.cm().Require(*requirer, *supporter, {"goal_domain"}).ok();
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.cm().Propagate(*supporter, dov));
  }
  state.counters["events_delivered"] =
      static_cast<double>(system.cm().stats().events_delivered);
}
BENCHMARK(BM_Level_AC_RequirePropagate);

// Level-spanning: one full DOP driven from the AC level down (a DA
// running a one-tool script).
void BM_Level_Spanning_FullDop(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    core::ConcordSystem system(bench::DefaultConfig());
    NodeId ws = system.AddWorkstation("ws");
    cooperation::DaDescription desc;
    desc.dot = system.dots().chip;
    desc.designer = DesignerId(1);
    std::vector<std::unique_ptr<workflow::ScriptNode>> steps;
    steps.push_back(
        workflow::ScriptNode::Dop(vlsi::kToolStructureSynthesis));
    desc.dc = workflow::Script(
        "one", workflow::ScriptNode::Sequence(std::move(steps)));
    desc.workstation = ws;
    auto da = system.InitDesign(std::move(desc));
    system.SetSeedObject(
        *da, vlsi::MakeBehavioralChip(system.dots(), "c", 6)).ok();
    system.StartDa(*da).ok();
    state.ResumeTiming();
    benchmark::DoNotOptimize(system.RunDa(*da));
  }
}
BENCHMARK(BM_Level_Spanning_FullDop)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace concord

BENCHMARK_MAIN();
