// Ablation A1 — §5.2 locking claims.
//
// The paper argues short locks suffice to protect checkin/checkout and
// that long *derivation locks* are an application-level opt-in: without
// them, concurrent DOPs on the same DOV derive separate versions
// (no write conflicts, thanks to versioning); with them, conflicting
// checkouts are rejected. This bench measures the conflict rate and
// throughput under both policies as sharing increases.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "txn/lock_manager.h"

namespace concord {
namespace {

void BM_Locking_ConcurrentCheckouts(benchmark::State& state) {
  const int das = static_cast<int>(state.range(0));
  const bool derivation_locks = state.range(1) != 0;
  double conflicts = 0;
  double checkouts = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::ConcordSystem system(bench::DefaultConfig());
    NodeId ws = system.AddWorkstation("ws");
    txn::ClientTm& tm = system.client_tm(ws);
    // One shared DOV, owned by DA1.
    auto dop0 = tm.BeginDop(DaId(1));
    storage::DesignObject obj(system.dots().module);
    obj.SetAttr(vlsi::kAttrName, "m");
    obj.SetAttr(vlsi::kAttrDomain, vlsi::kDomainStructure);
    DovId shared = *tm.Checkin(*dop0, obj, {});
    tm.CommitDop(*dop0).ok();
    // Everyone may read it (usage grants).
    for (int i = 1; i <= das; ++i) {
      system.server_tm().locks().GrantUsageRead(shared, DaId(i));
    }
    state.ResumeTiming();

    // Each DA runs one DOP reading the shared DOV and deriving its own
    // version — the paper's "separate new versions that make it to
    // their own DAs' derivation graphs". The DOPs are live
    // *concurrently* (long transactions): all check out before any
    // finishes, which is where derivation locks bite.
    int local_conflicts = 0;
    std::vector<DopId> live;
    for (int i = 1; i <= das; ++i) {
      auto dop = tm.BeginDop(DaId(i));
      Status st = tm.Checkout(*dop, shared, derivation_locks);
      if (st.IsLockConflict()) {
        ++local_conflicts;
        tm.AbortDop(*dop).ok();
        continue;
      }
      live.push_back(*dop);
    }
    for (DopId dop : live) {
      auto out = tm.Checkin(dop, obj, {shared});
      benchmark::DoNotOptimize(out);
      tm.CommitDop(dop).ok();
    }
    conflicts = local_conflicts;
    checkouts = das;
  }
  state.counters["das"] = das;
  state.counters["conflicts"] = conflicts;
  state.counters["conflict_rate"] = conflicts / checkouts;
  state.SetLabel(derivation_locks ? "derivation_locks" : "versioning_only");
}
BENCHMARK(BM_Locking_ConcurrentCheckouts)
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({32, 0})
    ->Args({32, 1});

// Raw lock-table operation costs.
void BM_Locking_TableOps(benchmark::State& state) {
  txn::LockManager locks;
  uint64_t i = 0;
  for (auto _ : state) {
    DovId dov(1 + (i % 1024));
    DaId da(1 + (i % 7));
    locks.SetScopeOwner(dov, da);
    benchmark::DoNotOptimize(locks.CanRead(da, dov));
    locks.AcquireDerivation(dov, da).ok();
    locks.ReleaseDerivation(dov, da).ok();
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_Locking_TableOps);

// Scope-lock inheritance at sub-DA termination, swept over the number
// of final DOVs devolving to the super-DA.
void BM_Locking_Inheritance(benchmark::State& state) {
  const int finals = static_cast<int>(state.range(0));
  txn::LockManager locks;
  std::vector<DovId> dovs;
  for (int i = 0; i < finals; ++i) dovs.push_back(DovId(i + 1));
  for (auto _ : state) {
    state.PauseTiming();
    for (DovId dov : dovs) locks.SetScopeOwner(dov, DaId(2));
    state.ResumeTiming();
    locks.InheritScopeLocks(DaId(1), DaId(2), dovs);
  }
  state.counters["final_dovs"] = finals;
}
BENCHMARK(BM_Locking_Inheritance)->Arg(1)->Arg(16)->Arg(256);

}  // namespace
}  // namespace concord

BENCHMARK_MAIN();
