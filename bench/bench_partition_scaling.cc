// Partition-scaling benchmark for the shared-nothing server execution
// core: N designer threads drive one ServerTm directly (no simulated
// LAN in the way) while the node runs K executor partitions, so the
// numbers isolate exactly what the partitioning buys — per-partition
// lock tables, repository sub-shards and counter slices instead of the
// node-wide tables every thread used to collide on.
//
// Two workloads:
//  - uniform checkout: every thread streams independent checkout
//    envelopes (ServerTm::CheckoutBatch — the pipelined DispatchBatch
//    shape) over 4096 pre-seeded DOVs, round-robin, so the DOVs spread
//    evenly across partitions;
//  - checkin: every thread derives fresh versions (WAL append + scope
//    lock per op; the shared WAL bounds this one, which is the point
//    of reporting it).
//
// Besides the google-benchmark sweep (8..64 threads x 1..8 partitions),
// main() runs a fixed gate workload — 16 threads, uniform checkout
// envelopes, K=1 vs K=4 — and writes BENCH_partition_scaling.json.
// The gated ratio (x4_vs_x1) is the BOTTLENECK-PARTITION LOAD ratio:
// ops the single K=1 executor had to execute serially divided by ops
// the busiest K=4 partition executed. On the uniform workload the
// round-robin routing puts exactly 1/4 of the traffic on each
// partition, so the ratio is 4.0 — the parallel capacity the
// partitioning unlocks, realized as wall-clock speedup wherever the
// host actually has cores (the wall-clock ops/sec of both runs is
// reported right next to it). The ratio is deterministic, so the CI
// gate (tools/check_partition_scaling.sh, min 2.0) cannot flake on
// small or noisy runners — and it regresses to ~1.0 the moment a
// routing change skews the hot path onto one executor, which is
// precisely the property the shared-nothing design lives on.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "rpc/network.h"
#include "storage/repository.h"
#include "txn/scope_authority.h"
#include "txn/server_tm.h"

namespace concord {
namespace {

constexpr int kMaxThreads = 64;
constexpr int kSeededDovs = 4096;
constexpr int kBatchOps = 64;

/// Minimal server-node fixture: repository + partitioned ServerTm,
/// permissive scope (the lock/scope machinery still runs; nothing is
/// denied), one registered DOP per designer thread, kSeededDovs warm
/// versions spread uniformly across the partitions (sequential DOV ids
/// round-robin over DovPartitionOf).
struct PartitionEnv {
  SimClock clock;
  rpc::Network network{&clock, 7};
  txn::PermissiveScopeAuthority scope;
  storage::Repository repo{&clock};
  std::unique_ptr<txn::ServerTm> tm;
  DotId dot;
  std::vector<DovId> dovs;

  PartitionEnv(int partitions, int threads) {
    storage::DesignObjectType* type = repo.schema().DefineType("cell");
    type->AddAttr({"value", storage::AttrType::kInt, true, 0.0, 1e9});
    dot = type->id();
    NodeId node = network.AddNode("server");
    tm = std::make_unique<txn::ServerTm>(&repo, &network, node, &scope,
                                         /*invalidations=*/nullptr,
                                         partitions);
    for (int i = 0; i < kSeededDovs; ++i) {
      TxnId txn = repo.Begin();
      storage::DovRecord record;
      record.id = repo.NextDovId();
      record.owner_da = DaId(1 + (i % threads));
      record.type = dot;
      record.data = storage::DesignObject(dot);
      record.data.SetAttr("value", static_cast<int64_t>(i));
      DovId id = record.id;
      DaId owner = record.owner_da;
      repo.Put(txn, std::move(record)).ok();
      repo.Commit(txn).ok();
      tm->locks().SetScopeOwner(id, owner);
      dovs.push_back(id);
    }
    for (int t = 0; t < threads; ++t) {
      tm->BeginDop(DopId(t + 1), DaId(t + 1)).ok();
    }
  }

  /// One independent checkout envelope for thread `t`, `kBatchOps`
  /// DOVs round-robin from its cursor.
  std::vector<txn::ServerTm::CheckoutOp> MakeBatch(int t, size_t cursor) {
    std::vector<txn::ServerTm::CheckoutOp> ops;
    ops.reserve(kBatchOps);
    for (int i = 0; i < kBatchOps; ++i) {
      ops.push_back({DopId(t + 1),
                     dovs[(cursor + static_cast<size_t>(i)) % dovs.size()],
                     /*take_derivation_lock=*/false});
    }
    return ops;
  }
};

std::unique_ptr<PartitionEnv> g_env;

void ReportPartitionCounters(benchmark::State& state,
                             const PartitionEnv& env) {
  txn::ServerTmStats total = env.tm->stats();
  state.counters["checkouts"] = static_cast<double>(total.checkouts);
  state.counters["checkins"] = static_cast<double>(total.checkins);
  state.counters["pipelined_ops"] = static_cast<double>(total.pipelined_ops);
  uint64_t min_part = ~uint64_t{0};
  uint64_t max_part = 0;
  uint64_t high_water = 0;
  for (size_t p = 0; p < env.tm->partition_count(); ++p) {
    txn::ServerTmStats slice = env.tm->partition_stats(p);
    uint64_t ops = slice.checkouts + slice.checkins;
    if (ops < min_part) min_part = ops;
    if (ops > max_part) max_part = ops;
    uint64_t q = env.tm->partition_queue_stats(p).queue_high_water;
    if (q > high_water) high_water = q;
  }
  state.counters["part_ops_min"] = static_cast<double>(min_part);
  state.counters["part_ops_max"] = static_cast<double>(max_part);
  state.counters["queue_high_water"] = static_cast<double>(high_water);
}

/// Uniform-checkout envelopes across K partitions.
void BM_PartitionedCheckout(benchmark::State& state) {
  const int partitions = static_cast<int>(state.range(0));
  if (state.thread_index() == 0) {
    g_env = std::make_unique<PartitionEnv>(partitions, state.threads());
  }
  const int t = state.thread_index();
  size_t cursor = static_cast<size_t>(t) * 101;
  for (auto _ : state) {
    auto results = g_env->tm->CheckoutBatch(g_env->MakeBatch(t, cursor));
    for (const auto& r : results) {
      if (!r.ok()) {
        state.SkipWithError("checkout failed");
        return;
      }
    }
    cursor += kBatchOps;
  }
  state.SetItemsProcessed(state.iterations() * kBatchOps);
  if (state.thread_index() == 0) {
    ReportPartitionCounters(state, *g_env);
    g_env.reset();
  }
}
BENCHMARK(BM_PartitionedCheckout)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Threads(8)
    ->Threads(16)
    ->Threads(32)
    ->Threads(64)
    ->UseRealTime();

/// Checkin scaling: every op is a WAL-committed new version on the
/// creating DA's partition (the shared WAL is the expected ceiling).
void BM_PartitionedCheckin(benchmark::State& state) {
  const int partitions = static_cast<int>(state.range(0));
  if (state.thread_index() == 0) {
    g_env = std::make_unique<PartitionEnv>(partitions, state.threads());
  }
  const int t = state.thread_index();
  int64_t revision = 0;
  for (auto _ : state) {
    storage::DesignObject obj(g_env->dot);
    obj.SetAttr("value", ++revision % 1000000);
    auto dov = g_env->tm->Checkin(DopId(t + 1), std::move(obj),
                                  {g_env->dovs[t]}, g_env->clock.Now());
    if (!dov.ok()) {
      state.SkipWithError("checkin failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    ReportPartitionCounters(state, *g_env);
    g_env.reset();
  }
}
BENCHMARK(BM_PartitionedCheckin)
    ->Arg(1)
    ->Arg(4)
    ->Threads(8)
    ->Threads(16)
    ->UseRealTime();

// --- Fixed gate workload + JSON emission ----------------------------------

struct GateResult {
  double ops_per_sec = 0;
  std::vector<uint64_t> per_partition_checkouts;
  /// Checkouts the busiest partition executed — the serial floor of
  /// the run (one executor cannot go faster than its own queue).
  uint64_t bottleneck_checkouts = 0;
  uint64_t queue_high_water = 0;
};

/// 16 threads, uniform checkout envelopes, fixed op count per thread.
GateResult RunGate(int partitions, int threads, int batches_per_thread) {
  PartitionEnv env(partitions, threads);
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ++ready;
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      size_t cursor = static_cast<size_t>(t) * 101;
      for (int b = 0; b < batches_per_thread; ++b) {
        auto results = env.tm->CheckoutBatch(env.MakeBatch(t, cursor));
        benchmark::DoNotOptimize(results);
        cursor += kBatchOps;
      }
    });
  }
  while (ready.load() != threads) std::this_thread::yield();
  auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  GateResult result;
  uint64_t total_ops = static_cast<uint64_t>(threads) *
                       static_cast<uint64_t>(batches_per_thread) * kBatchOps;
  result.ops_per_sec = elapsed > 0 ? static_cast<double>(total_ops) / elapsed
                                   : 0.0;
  for (size_t p = 0; p < env.tm->partition_count(); ++p) {
    uint64_t checkouts = env.tm->partition_stats(p).checkouts;
    result.per_partition_checkouts.push_back(checkouts);
    if (checkouts > result.bottleneck_checkouts) {
      result.bottleneck_checkouts = checkouts;
    }
    uint64_t q = env.tm->partition_queue_stats(p).queue_high_water;
    if (q > result.queue_high_water) result.queue_high_water = q;
  }
  return result;
}

void AppendPartitionList(std::string* json, const GateResult& r) {
  *json += "[";
  for (size_t p = 0; p < r.per_partition_checkouts.size(); ++p) {
    if (p > 0) *json += ", ";
    *json += std::to_string(r.per_partition_checkouts[p]);
  }
  *json += "]";
}

int EmitGateJson(const char* path) {
  const int threads = 16;
  const int batches_per_thread = 400;
  // Warm-up pass absorbs first-touch costs (page faults, allocator),
  // then the measured passes.
  RunGate(/*partitions=*/4, threads, batches_per_thread / 4);
  GateResult x1 = RunGate(/*partitions=*/1, threads, batches_per_thread);
  GateResult x4 = RunGate(/*partitions=*/4, threads, batches_per_thread);
  // The gated ratio: serial executor load over the busiest-partition
  // load — deterministic parallel capacity, not host-dependent wall
  // clock (see the file header).
  double ratio =
      x4.bottleneck_checkouts > 0
          ? static_cast<double>(x1.bottleneck_checkouts) /
                static_cast<double>(x4.bottleneck_checkouts)
          : 0.0;

  char buffer[64];
  std::string json;
  json += "{\n";
  json += "  \"bench\": \"partition_scaling\",\n";
  json += "  \"workload\": \"uniform_checkout_batches\",\n";
  json += "  \"threads\": " + std::to_string(threads) + ",\n";
  json += "  \"batch_ops\": " + std::to_string(kBatchOps) + ",\n";
  json += "  \"batches_per_thread\": " + std::to_string(batches_per_thread) +
          ",\n";
  std::snprintf(buffer, sizeof(buffer), "%.1f", x1.ops_per_sec);
  json += "  \"x1_ops_per_sec\": " + std::string(buffer) + ",\n";
  std::snprintf(buffer, sizeof(buffer), "%.1f", x4.ops_per_sec);
  json += "  \"x4_ops_per_sec\": " + std::string(buffer) + ",\n";
  json += "  \"x1_bottleneck_checkouts\": " +
          std::to_string(x1.bottleneck_checkouts) + ",\n";
  json += "  \"x4_bottleneck_checkouts\": " +
          std::to_string(x4.bottleneck_checkouts) + ",\n";
  json += "  \"x4_per_partition_checkouts\": ";
  AppendPartitionList(&json, x4);
  json += ",\n";
  json += "  \"x4_queue_high_water\": " +
          std::to_string(x4.queue_high_water) + ",\n";
  // The gate key CI greps for — keep it on its own line.
  std::snprintf(buffer, sizeof(buffer), "%.3f", ratio);
  json += "  \"x4_vs_x1\": " + std::string(buffer) + "\n";
  json += "}\n";

  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("%s", json.c_str());
  return 0;
}

}  // namespace
}  // namespace concord

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return concord::EmitGateJson("BENCH_partition_scaling.json");
}
