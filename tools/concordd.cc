// concordd: a standalone CONCORD server process. Hosts one ServerTm
// shard — repository, WAL directory, lock tables, 2PC ledger — behind
// the socket RPC transport (src/net/), so real workstation processes
// reach it over TCP or Unix-domain sockets instead of the simulated
// LAN. One concordd per shard; a plane is N concordd processes plus
// any number of concord_client workstations.
//
// Startup recovers everything durable before serving: the repository
// replays its WAL (reclaiming a LOCK file left by a kill -9'd
// predecessor), then the server-TM re-stages prepared-but-undecided
// 2PC participants from the stable ledger, so a coordinator's retried
// Decide lands on the same staged effects the pre-crash vote promised.
//
// stdout handshake (consumed by the process-crash harness):
//   LISTENING <addr>    socket bound; ephemeral TCP ports resolved
//   RESTAGED <n>        prepared 2PC participants recovered from stable
//   READY               serving traffic
//
// Usage:
//   concordd --listen=tcp:127.0.0.1:0 --data-dir=DIR --shard=N
//            [--partitions=N] [--workers=N]
//
// SIGTERM/SIGINT shut down gracefully (goodbye frames, drained
// workers). SIGKILL is the crash the WAL and the 2PC ledger exist for.

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "net/address.h"
#include "net/rpc_server.h"
#include "rpc/network.h"
#include "storage/repository.h"
#include "storage/wal.h"
#include "tools/plane_schema.h"
#include "txn/scope_authority.h"
#include "txn/server_service.h"
#include "txn/server_tm.h"

namespace {

// Self-pipe carrying shutdown signals to the main thread. Only the
// write end is touched from the handler (async-signal-safe).
int g_signal_pipe[2] = {-1, -1};

void OnShutdownSignal(int /*signo*/) {
  char byte = 1;
  ssize_t ignored = write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --listen=tcp:HOST:PORT|unix:/PATH --data-dir=DIR "
               "--shard=N [--partitions=N] [--workers=N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace concord;

  std::string listen_spec;
  std::string data_dir;
  std::string flag;
  uint32_t shard = 0;
  int partitions = 1;
  int workers = 2;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--listen", &flag)) {
      listen_spec = flag;
    } else if (ParseFlag(argv[i], "--data-dir", &flag)) {
      data_dir = flag;
    } else if (ParseFlag(argv[i], "--shard", &flag)) {
      shard = static_cast<uint32_t>(std::strtoul(flag.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--partitions", &flag)) {
      partitions = std::atoi(flag.c_str());
    } else if (ParseFlag(argv[i], "--workers", &flag)) {
      workers = std::atoi(flag.c_str());
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return Usage(argv[0]);
    }
  }
  if (listen_spec.empty()) return Usage(argv[0]);

  auto address = net::Address::Parse(listen_spec);
  if (!address.ok()) {
    std::fprintf(stderr, "bad --listen: %s\n",
                 address.status().ToString().c_str());
    return 2;
  }

  // The simulated clock and LAN exist only because ServerTm's
  // constructor wants them; no simulated traffic ever flows — every
  // request arrives through the socket transport below.
  SimClock clock;
  rpc::Network network(&clock, /*seed=*/1);
  NodeId node = network.AddNode("concordd-shard" + std::to_string(shard));

  storage::Repository repository(&clock);
  repository.set_dov_id_shard(shard);
  tools::DefinePlaneSchema(&repository.schema());
  if (!data_dir.empty()) {
    storage::WalOptions wal;
    wal.coalesce_fsyncs = true;
    Status opened = repository.Open(data_dir, wal);
    if (!opened.ok()) {
      std::fprintf(stderr, "repository open failed: %s\n",
                   opened.ToString().c_str());
      return 1;
    }
  }

  txn::PermissiveScopeAuthority scope;
  txn::ServerTm tm(&repository, &network, node, &scope,
                   /*invalidations=*/nullptr, partitions);
  // Repository replay restored committed state; this restores the
  // staged-but-undecided layer on top of it.
  size_t restaged = tm.RestagePreparedFromStable();

  net::RpcServer::Options options;
  options.worker_threads = workers;
  net::RpcServer server(*address, options);
  server.RegisterMethod(
      txn::kServerServiceMethod,
      [&tm](const std::string& payload) -> Result<std::string> {
        CONCORD_ASSIGN_OR_RETURN(txn::BatchRequest batch,
                                 txn::DecodeBatchRequest(payload));
        return txn::EncodeBatchReply(txn::DispatchBatch(tm, batch));
      });
  // Harness introspection: every DOV of a DA with its "value" attribute,
  // one "<dov> <value>" line per record. This is how the crash tests
  // assert both presence (committed survivors) and absence (aborted
  // checkins) without knowing server-assigned ids up front.
  server.RegisterMethod(
      "admin/dump_da",
      [&repository](const std::string& payload) -> Result<std::string> {
        DaId da(std::strtoull(payload.c_str(), nullptr, 10));
        std::string out;
        for (DovId dov : repository.graph(da).TopologicalOrder()) {
          auto record = repository.Get(dov);
          if (!record.ok()) continue;
          double value = record->data.GetNumeric("value").value_or(-1);
          out += std::to_string(dov.value()) + " " +
                 std::to_string(static_cast<long long>(value)) + "\n";
        }
        return out;
      });

  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "listen failed: %s\n", started.ToString().c_str());
    return 1;
  }

  std::printf("LISTENING %s\n", server.bound_address().ToString().c_str());
  std::printf("RESTAGED %zu\n", restaged);
  std::printf("READY\n");
  std::fflush(stdout);

  if (pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "pipe failed: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnShutdownSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  char byte;
  while (read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::printf("SHUTDOWN\n");
  std::fflush(stdout);
  server.Shutdown();
  return 0;
}
