#!/usr/bin/env python3
"""Partition-ownership and concurrency-discipline linter for CONCORD.

Enforces the rules documented in docs/CONCURRENCY.md:

  raw-sync        No raw standard-library synchronization primitive
                  (std::mutex, std::recursive_mutex, std::shared_mutex,
                  std::condition_variable, std::lock_guard,
                  std::scoped_lock, std::shared_lock, std::unique_lock)
                  outside src/common/sync.h. The capability-annotated
                  wrappers there are the only sanctioned spellings —
                  they are what makes clang's -Wthread-safety analysis
                  see every acquisition.

  submit-wait     No submit-and-wait from executor context: a task body
                  handed to PartitionEngine::Post/Run (or a dispatch
                  helper that forwards to them, e.g. the wavefront
                  lambda in server_tm.cc, or ExecutorPool::Submit) must
                  not itself call Post/Run/Submit/Drain or block on a
                  future's .get()/.wait() — an executor waiting on its
                  own mailbox deadlocks.

  partition-in    Partition-resident helpers follow the `FooIn`
                  naming convention; every call site of such a helper
                  must sit inside an executor task body (a lambda
                  passed to Post/Run/Submit/wavefront) or inside
                  another *In helper. Calling one from choreography
                  code would touch executor-owned state off-partition.

  safety-comment  Every NO_THREAD_SAFETY_ANALYSIS opt-out must carry a
                  `SAFETY:` comment (same line or within the three
                  preceding lines) explaining why the analysis is
                  wrong there.

A finding can be waived with `lint:allow(<rule>)` in a comment on the
same line — waivers are for the rare constructs the wrappers cannot
express (e.g. the std::unique_lock vector in Repository's
stripe bulk-hold) and should link to a SAFETY/rationale comment.

When python-clang and build/compile_commands.json are available, the
raw-sync check runs over the clang AST (catching typedef'd spellings);
otherwise the regex engine below runs — the rule set is identical, so
CI never silently skips a rule just because libclang is missing.

Usage:
  tools/lint_ownership.py [--root REPO] [files...]   # lint src/ (or files)
  tools/lint_ownership.py --self-test                # run fixture suite
"""

import argparse
import os
import re
import sys

RAW_SYNC_RE = re.compile(
    r"\bstd::(mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?|"
    r"lock_guard|scoped_lock|shared_lock|unique_lock)\b"
)
# Dispatch functions whose lambda arguments run ON an executor.
DISPATCH_RE = re.compile(r"\b(?:Post|Run|Submit|wavefront)\s*\(")
# Calls that submit to (or wait on) an executor — fatal inside a task.
SUBMIT_WAIT_RE = re.compile(
    r"(?:\.|->)(?:Post|Run|Submit|Drain)\s*\(|(?:\.|->)(?:get|wait)\s*\(\s*\)"
)
PARTITION_IN_CALL_RE = re.compile(r"\b([A-Z]\w*In)\s*\(")
NO_TSA_RE = re.compile(r"\bNO_THREAD_SAFETY_ANALYSIS\b")
ALLOW_RE = re.compile(r"lint:allow\(([a-z-]+)\)")

SYNC_HEADER = os.path.join("src", "common", "sync.h")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving offsets
    and newlines so line numbers stay valid."""
    out = []
    i, n = 0, len(text)
    state = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = None
                out.append("\n")
            else:
                out.append(" ")
            i += 1
            continue
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
            continue
        else:  # inside a string/char literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == state:
                state = None
            out.append(c if c == "\n" else (c if c == state else " "))
            i += 1
            continue
        i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def waived(raw_lines, line_no, rule):
    line = raw_lines[line_no - 1] if line_no - 1 < len(raw_lines) else ""
    m = ALLOW_RE.search(line)
    return m is not None and m.group(1) == rule


def executor_lambda_spans(code):
    """Offset ranges of lambda bodies passed (directly) to a dispatch
    function. Nested dispatch *calls* inside those ranges are exactly
    the submit-and-wait rule's target."""
    spans = []
    for m in DISPATCH_RE.finditer(code):
        # Walk the argument list of the dispatch call; collect every
        # top-level lambda body `[...](...) { ... }` inside it.
        depth = 1
        i = m.end()
        while i < len(code) and depth > 0:
            c = code[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
            elif c == "[" and depth >= 1:
                # Potential lambda introducer: find its body brace.
                j = code.find("]", i)
                if j == -1:
                    break
                k = j + 1
                while k < len(code) and code[k] in " \t\n":
                    k += 1
                if k < len(code) and code[k] == "(":
                    pdepth = 1
                    k += 1
                    while k < len(code) and pdepth > 0:
                        if code[k] == "(":
                            pdepth += 1
                        elif code[k] == ")":
                            pdepth -= 1
                        k += 1
                    while k < len(code) and code[k] in " \t\n":
                        k += 1
                    # Skip a trailing-return-type `-> T`
                    if code.startswith("->", k):
                        brace = code.find("{", k)
                        k = brace if brace != -1 else k
                while k < len(code) and code[k] not in "{,)":
                    k += 1
                if k < len(code) and code[k] == "{":
                    bdepth = 1
                    body_start = k + 1
                    k += 1
                    while k < len(code) and bdepth > 0:
                        if code[k] == "{":
                            bdepth += 1
                        elif code[k] == "}":
                            bdepth -= 1
                        k += 1
                    spans.append((body_start, k - 1))
                    i = k
                    continue
                i = j + 1
                continue
            i += 1
    return spans


def in_spans(offset, spans):
    return any(a <= offset < b for a, b in spans)


def function_body_spans_named_in(code):
    """Offset ranges of the bodies of *In function definitions (a
    partition-resident helper may call another), plus the offsets of
    the definition sites themselves (not call sites)."""
    spans = []
    def_offsets = set()
    for m in re.finditer(r"\b\w+In\s*\(", code):
        # Heuristic: a definition has `{` after its parameter list and
        # is introduced at statement level (preceded by `::` qualified
        # name or a return type on the same declaration).
        i = m.end() - 1
        depth = 1
        i += 1
        while i < len(code) and depth > 0:
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
            i += 1
        j = i
        while j < len(code) and code[j] in " \t\n":
            j += 1
        if code.startswith("const", j):
            j += 5
            while j < len(code) and code[j] in " \t\n":
                j += 1
        if j < len(code) and code[j] == "{":
            bdepth = 1
            body_start = j + 1
            j += 1
            while j < len(code) and bdepth > 0:
                if code[j] == "{":
                    bdepth += 1
                elif code[j] == "}":
                    bdepth -= 1
                j += 1
            spans.append((body_start, j - 1))
            def_offsets.add(m.start())
    return spans, def_offsets


def check_file(path, text, findings):
    raw_lines = text.split("\n")
    code = strip_comments_and_strings(text)
    rel = path.replace("\\", "/")

    # --- raw-sync ---------------------------------------------------
    if not rel.endswith(SYNC_HEADER.replace(os.sep, "/")):
        for m in RAW_SYNC_RE.finditer(code):
            ln = line_of(code, m.start())
            if waived(raw_lines, ln, "raw-sync"):
                continue
            findings.append(Finding(
                rel, ln, "raw-sync",
                f"raw {m.group(0)} — use the capability-annotated wrappers "
                f"in common/sync.h (Mutex/MutexLock/CondVar/...)"))

    # --- submit-wait ------------------------------------------------
    spans = executor_lambda_spans(code)
    for m in SUBMIT_WAIT_RE.finditer(code):
        if not in_spans(m.start(), spans):
            continue
        ln = line_of(code, m.start())
        if waived(raw_lines, ln, "submit-wait"):
            continue
        findings.append(Finding(
            rel, ln, "submit-wait",
            "executor task body submits to / waits on an executor "
            "(Post/Run/Submit/Drain/.get()) — an executor blocking on "
            "its own mailbox deadlocks; route this through the "
            "dispatching choreography thread"))

    # --- partition-in -----------------------------------------------
    if rel.endswith(".cc"):
        in_fn_spans, def_offsets = function_body_spans_named_in(code)
        for m in PARTITION_IN_CALL_RE.finditer(code):
            # Skip definitions: qualified (`T C::FooIn(...)`) or inline
            # (the parameter list is followed by a body brace).
            before = code[max(0, m.start() - 2):m.start()]
            if before.endswith("::") or m.start() in def_offsets:
                continue
            if in_spans(m.start(), spans) or in_spans(m.start(), in_fn_spans):
                continue
            ln = line_of(code, m.start())
            if waived(raw_lines, ln, "partition-in"):
                continue
            findings.append(Finding(
                rel, ln, "partition-in",
                f"partition-resident helper {m.group(1)}() called outside "
                f"an executor task body — executor-owned state must only "
                f"be touched on its owning partition"))

    # --- safety-comment ---------------------------------------------
    if rel.endswith(SYNC_HEADER.replace(os.sep, "/")):
        return  # the macro's definition site is not an opt-out
    for m in NO_TSA_RE.finditer(code):
        ln = line_of(code, m.start())
        window = raw_lines[max(0, ln - 4):ln]
        if not any("SAFETY:" in line for line in window):
            findings.append(Finding(
                rel, ln, "safety-comment",
                "NO_THREAD_SAFETY_ANALYSIS without a SAFETY: comment — "
                "every opt-out must say why the analysis is wrong here"))


def try_clang_raw_sync(root, paths, findings):
    """AST-backed raw-sync check (catches aliased spellings). Returns
    True when it ran; the caller then skips nothing — the regex checks
    still run, this only ADDS precision."""
    try:
        from clang import cindex  # noqa: F401
    except ImportError:
        return False
    cc_path = os.path.join(root, "build", "compile_commands.json")
    if not os.path.exists(cc_path):
        return False
    try:
        index = cindex.Index.create()
        db = cindex.CompilationDatabase.fromDirectory(
            os.path.join(root, "build"))
    except cindex.LibclangError:
        return False
    raw_types = {
        "std::mutex", "std::recursive_mutex", "std::shared_mutex",
        "std::timed_mutex", "std::condition_variable",
        "std::condition_variable_any",
    }
    for path in paths:
        if not path.endswith(".cc"):
            continue
        cmds = db.getCompileCommands(path)
        if not cmds:
            continue
        args = [a for a in list(cmds[0].arguments)[1:-1] if a != "-c"]
        try:
            tu = index.parse(path, args=args)
        except cindex.TranslationUnitLoadError:
            continue
        for node in tu.cursor.walk_preorder():
            if node.kind != cindex.CursorKind.FIELD_DECL:
                continue
            if node.location.file is None:
                continue
            f = os.path.abspath(node.location.file.name)
            if not f.startswith(os.path.abspath(os.path.join(root, "src"))):
                continue
            if f.endswith(os.path.join("common", "sync.h")):
                continue
            if node.type.get_canonical().spelling in raw_types:
                findings.append(Finding(
                    os.path.relpath(f, root), node.location.line, "raw-sync",
                    f"member '{node.spelling}' has raw type "
                    f"{node.type.get_canonical().spelling} — use the "
                    f"annotated wrappers in common/sync.h"))
    return True


def lint_paths(root, paths):
    findings = []
    for path in paths:
        with open(path, encoding="utf-8") as f:
            text = f.read()
        check_file(os.path.relpath(path, root), text, findings)
    if try_clang_raw_sync(root, paths, findings):
        print("note: libclang AST pass ran in addition to the regex engine")
    # De-duplicate (AST + regex may find the same member).
    seen, unique = set(), []
    for f in findings:
        key = (f.path, f.line, f.rule)
        if key in seen:
            continue
        seen.add(key)
        unique.append(f)
    return unique


def default_paths(root):
    paths = []
    for dirpath, _, filenames in os.walk(os.path.join(root, "src")):
        for name in filenames:
            if name.endswith((".h", ".cc")):
                paths.append(os.path.join(dirpath, name))
    return sorted(paths)


def self_test(root):
    """The linter must find every seeded violation in testdata/bad and
    nothing in testdata/good — proving CI would catch a regression in
    the linter itself, not only in the tree."""
    testdata = os.path.join(root, "tools", "testdata")
    good = sorted(
        os.path.join(testdata, "good", f)
        for f in os.listdir(os.path.join(testdata, "good")))
    bad_dir = os.path.join(testdata, "bad")
    failures = []

    good_findings = lint_paths(root, good)
    for f in good_findings:
        failures.append(f"good fixture flagged: {f}")

    # Each bad fixture declares its expected rules in `// expect:` lines.
    for name in sorted(os.listdir(bad_dir)):
        path = os.path.join(bad_dir, name)
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        expected = re.findall(r"//\s*expect:\s*([a-z-]+)", text)
        if not expected:
            failures.append(f"{name}: bad fixture declares no // expect: rule")
            continue
        found_rules = {f.rule for f in lint_paths(root, [path])}
        for rule in expected:
            if rule not in found_rules:
                failures.append(
                    f"{name}: seeded {rule} violation NOT detected")

    if failures:
        print("lint_ownership --self-test FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"lint_ownership --self-test OK "
          f"({len(good)} good, {len(os.listdir(bad_dir))} bad fixtures)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the linter against the seeded fixtures")
    parser.add_argument("files", nargs="*",
                        help="files to lint (default: all of src/)")
    args = parser.parse_args()
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    if args.self_test:
        return self_test(root)

    paths = [os.path.abspath(f) for f in args.files] or default_paths(root)
    findings = lint_paths(root, paths)
    for f in findings:
        print(f)
    if findings:
        print(f"\n{len(findings)} ownership/concurrency finding(s). See "
              f"docs/CONCURRENCY.md for the rules and lint:allow(<rule>) "
              f"waivers.")
        return 1
    print(f"lint_ownership: {len(paths)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
