#!/usr/bin/env sh
# Gate for the chaos harness: BENCH_scale_chaos.json must report zero
# invariant violations (no lost acked commit, no resurrected version,
# no half-applied 2PC decision, no cache-coherence breach, no reissued
# DOV id, no unbounded WAL) and a plane of at least MIN_DOVS generated
# versions — the ISSUE-10 short configuration is >= 10^5. A failing
# run prints the seed; replay with CONCORD_SEED=<n>. Usage:
#   tools/check_scale_chaos.sh [path-to-json] [min-dovs]
set -eu

JSON="${1:-BENCH_scale_chaos.json}"
MIN_DOVS="${2:-100000}"

if [ ! -f "$JSON" ]; then
  echo "check_scale_chaos: $JSON not found (run bench_scale_chaos first)" >&2
  exit 1
fi

# The bench emits one key per line: "violations_total": <n>
VIOLATIONS=$(awk -F': ' '/"violations_total"/ { gsub(/[,"]/, "", $2); print $2 }' "$JSON")
DOVS=$(awk -F': ' '/"dovs_generated"/ { gsub(/[,"]/, "", $2); print $2 }' "$JSON")
SEED=$(awk -F': ' '/"seed"/ { gsub(/[,"]/, "", $2); print $2 }' "$JSON")

if [ -z "$VIOLATIONS" ] || [ -z "$DOVS" ]; then
  echo "check_scale_chaos: missing violations_total/dovs_generated in $JSON" >&2
  exit 1
fi

echo "scale chaos: dovs_generated = $DOVS (required >= $MIN_DOVS), violations_total = $VIOLATIONS (required 0), seed = $SEED"

awk -v d="$DOVS" -v m="$MIN_DOVS" 'BEGIN { exit (d + 0 >= m + 0) ? 0 : 1 }' || {
  echo "check_scale_chaos: FAIL — plane too small ($DOVS DOVs < $MIN_DOVS); the run did not exercise the scale the gate claims" >&2
  exit 1
}

awk -v v="$VIOLATIONS" 'BEGIN { exit (v + 0 == 0) ? 0 : 1 }' || {
  echo "check_scale_chaos: FAIL — $VIOLATIONS invariant violation(s); replay with CONCORD_SEED=$SEED ./bench_scale_chaos" >&2
  exit 1
}
echo "check_scale_chaos: OK"
