#!/usr/bin/env bash
# Docs link-check + markdown lint (CI's docs leg; run locally from the
# repo root: tools/check_docs.sh).
#
#  - every relative markdown link in README.md and docs/*.md must
#    resolve to an existing file or directory;
#  - lint: no trailing whitespace, no tab characters, balanced fenced
#    code blocks, exactly one top-level H1 per file.
set -u

fail=0
err() {
  echo "check_docs: $*" >&2
  fail=1
}

files=(README.md docs/*.md)

for f in "${files[@]}"; do
  [ -f "$f" ] || { err "missing doc file: $f"; continue; }
  dir=$(dirname "$f")

  # --- Relative link targets must exist -----------------------------
  # Extract (target) parts of [text](target) links, one per line.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      err "$f: broken link -> $target"
    fi
  done < <(grep -oE '\[[^]]*\]\([^)]+\)' "$f" | sed -E 's/.*\(([^)]+)\)/\1/')

  # --- Lint ---------------------------------------------------------
  if grep -nE ' +$' "$f" >/dev/null; then
    err "$f: trailing whitespace on line(s): $(grep -cE ' +$' "$f")"
  fi
  if grep -nP '\t' "$f" >/dev/null; then
    err "$f: tab character(s) found"
  fi
  fences=$(grep -cE '^```' "$f")
  if [ $((fences % 2)) -ne 0 ]; then
    err "$f: unbalanced fenced code blocks ($fences fence lines)"
  fi
  h1s=$(grep -cE '^# ' "$f")
  if [ "$h1s" -ne 1 ]; then
    err "$f: expected exactly one top-level '# ' heading, found $h1s"
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED" >&2
  exit 1
fi
echo "check_docs: OK (${#files[@]} files)"
