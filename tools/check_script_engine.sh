#!/usr/bin/env sh
# Gate for the async script engine bench: BENCH_script_engine.json must
# show the pooled scheduler overlapping >= 4x more DOP bodies than the
# inline (deterministic single-thread) baseline on the 16-way branch
# script (the deterministic peak-overlap ratio — see
# bench/bench_fig6_scripts.cc for why the gate is not host-dependent
# wall clock). Full dispatch yields 16.0; a scheduler regression that
# serializes branch arms drags it toward 1.0 and fails the gate. Usage:
#   tools/check_script_engine.sh [path-to-json] [min-ratio]
set -eu

JSON="${1:-BENCH_script_engine.json}"
MIN="${2:-4.0}"

if [ ! -f "$JSON" ]; then
  echo "check_script_engine: $JSON not found (run bench_fig6_scripts first)" >&2
  exit 1
fi

# The bench emits the gate key on its own line: "pooled_vs_inline_peak": <ratio>
RATIO=$(awk -F': ' '/"pooled_vs_inline_peak"/ { gsub(/[,"]/, "", $2); print $2 }' "$JSON")

if [ -z "$RATIO" ]; then
  echo "check_script_engine: no pooled_vs_inline_peak key in $JSON" >&2
  exit 1
fi

echo "script engine: pooled_vs_inline_peak = $RATIO (required >= $MIN)"
awk -v r="$RATIO" -v m="$MIN" 'BEGIN { exit (r + 0 >= m + 0) ? 0 : 1 }' || {
  echo "check_script_engine: FAIL — the pooled scheduler overlaps under ${MIN}x the inline baseline's DOP bodies on a 16-way branch (dispatch serialized?)" >&2
  exit 1
}
echo "check_script_engine: OK"
