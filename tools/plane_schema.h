#ifndef CONCORD_TOOLS_PLANE_SCHEMA_H_
#define CONCORD_TOOLS_PLANE_SCHEMA_H_

#include "storage/schema.h"

namespace concord::tools {

/// Bounds of the "value" attribute in the plane schema below. Values
/// above kPlaneValueMax fail the repository's checkin integrity check —
/// concord_client's abort workload uses that to force a typed abort
/// (a 2PC participant voting no) without any timing dependence.
inline constexpr double kPlaneValueMax = 1e9;

/// The one design-object type the concordd/concord_client plane speaks.
/// Every process in a plane defines the same schema in the same order,
/// so DOT ids agree across the wire without a schema service. Returns
/// the type's id.
inline DotId DefinePlaneSchema(storage::SchemaCatalog* schema) {
  storage::DesignObjectType* cell = schema->DefineType("cell");
  cell->AddAttr({"value", storage::AttrType::kInt, /*required=*/true, 0.0,
                 kPlaneValueMax});
  return cell->id();
}

}  // namespace concord::tools

#endif  // CONCORD_TOOLS_PLANE_SCHEMA_H_
