// concord_client: a workstation process driving a real concordd plane
// over the socket transport. A full ClientTm (recovery points, DOV
// cache, batching, multi-participant 2PC) routes through one
// net::RpcChannel per server shard; the only difference from the
// simulated workstation is that envelopes cross real sockets to real
// processes the harness can kill -9.
//
// Modes (one line of machine-readable output per attempt, flushed, so
// the crash harness can kill servers mid-stream and still know exactly
// which commits were acknowledged):
//
//   --mode=churn      BeginDop + CheckinCommit loop on --da. Each
//                     attempt uses a fresh DOP so failures stay
//                     isolated. Emits:
//                       COMMITTED <dov> <value>   client-acked commit
//                       INDOUBT <value>           outcome unknown
//                       FAILED <value> <status>   typed failure
//
//   --mode=crossfire  Seeds --ops DOVs under --da (home --home), then
//                     for each seed runs a cross-shard interaction:
//                     BeginDop on --da2 (home --home2), Checkout of the
//                     seed with a derivation lock (participant on the
//                     seed's shard), CheckinCommit (participant on
//                     --home2) — true multi-participant 2PC on every
//                     attempt. Same output lines as churn.
//
//   --mode=abort      Like churn but every checkin carries a value
//                     above the schema bound, so the repository's
//                     integrity check votes no and the interaction
//                     aborts by type. Emits ABORTED <value> lines; the
//                     harness asserts those values are never visible.
//
//   --mode=verify     Reads "<dov> <value> <da>" lines from --expect
//                     and checks each out through the full stack,
//                     comparing content. Emits VERIFY OK|MISSING|
//                     MISMATCH lines and a VERIFIED <ok>/<total>
//                     summary; exit 1 on any mismatch.
//
//   --mode=dump       Prints shard --home's "admin/dump_da" view of
//                     --da: "<dov> <value>" lines straight from the
//                     server's repository.
//
// Usage:
//   concord_client --client-id=N --server=ADDR [--server=ADDR ...]
//                  --mode=M --da=N [--home=S] [--da2=N --home2=S]
//                  [--ops=K] [--value-base=V] [--expect=FILE]
//                  [--timeout-ms=T]
//
// --server flags are in shard order (shard 0 first) and must match the
// concordd processes' --shard numbering, since DOV ids route by the
// shard index baked into them.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "net/address.h"
#include "net/net_server_service.h"
#include "net/rpc_client.h"
#include "rpc/network.h"
#include "storage/object.h"
#include "tools/plane_schema.h"
#include "txn/client_tm.h"
#include "txn/shard_router.h"

namespace {

using namespace concord;

struct Flags {
  uint64_t client_id = 1;
  std::vector<std::string> servers;
  std::string mode;
  uint64_t da = 1;
  size_t home = 0;
  uint64_t da2 = 0;
  size_t home2 = 0;
  uint64_t ops = 8;
  int64_t value_base = 1000;
  std::string expect;
  int64_t timeout_ms = 10000;
  /// Pause between workload attempts — widens the window a crash
  /// harness has for killing a server mid-stream.
  int64_t sleep_ms = 0;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --client-id=N --server=ADDR [--server=ADDR ...] "
               "--mode=churn|crossfire|abort|verify|dump --da=N [--home=S] "
               "[--da2=N --home2=S] [--ops=K] [--value-base=V] "
               "[--expect=FILE] [--timeout-ms=T] [--sleep-ms=T]\n",
               argv0);
  return 2;
}

/// The workstation stack: one channel + NetServerService per shard, a
/// static-home router (no placement service in a concordd plane), and
/// the ClientTm on top.
struct Workstation {
  SimClock clock;
  rpc::Network network{&clock, /*seed=*/7};
  NodeId node;
  DotId dot;
  std::vector<std::shared_ptr<net::RpcChannel>> channels;
  std::vector<std::unique_ptr<net::NetServerService>> services;
  std::unique_ptr<txn::ClientTm> tm;
  txn::ShardRouter router;

  Workstation(const Flags& flags, Status* status) {
    node = network.AddNode("concord-client" + std::to_string(flags.client_id));
    storage::SchemaCatalog schema;
    dot = tools::DefinePlaneSchema(&schema);
    std::vector<std::pair<NodeId, txn::ServerService*>> routes;
    for (size_t s = 0; s < flags.servers.size(); ++s) {
      auto address = net::Address::Parse(flags.servers[s]);
      if (!address.ok()) {
        *status = address.status();
        return;
      }
      net::RpcChannel::Options options;
      options.call_timeout_ms = flags.timeout_ms;
      channels.push_back(std::make_shared<net::RpcChannel>(
          flags.client_id, *address, options));
      // Server NodeIds are client-local labels: the router only needs
      // them distinct, and shard s of a DOV id maps to routes[s].
      NodeId server_node(1000 + s);
      services.push_back(std::make_unique<net::NetServerService>(
          server_node, channels.back()));
      routes.emplace_back(server_node, services.back().get());
    }
    router = txn::ShardRouter(std::move(routes), /*placement=*/nullptr);
    *status = Status::OK();
  }

  Status PinHome(uint64_t da, size_t shard) {
    Status pinned = router.SetStaticHome(DaId(da), shard);
    if (!pinned.ok()) return pinned;
    // The router is copied into the ClientTm, so pins must precede it.
    return Status::OK();
  }

  void StartTm() {
    tm = std::make_unique<txn::ClientTm>(router, &network, node, &clock);
  }

  storage::DesignObject MakeObject(int64_t value) const {
    storage::DesignObject object(dot);
    object.SetAttr("value", value);
    return object;
  }
};

void ReportAttempt(const Result<DovId>& checked_in, int64_t value) {
  if (checked_in.ok()) {
    std::printf("COMMITTED %llu %lld\n",
                (unsigned long long)checked_in->value(), (long long)value);
  } else if (checked_in.status().IsUnavailable()) {
    std::printf("INDOUBT %lld\n", (long long)value);
  } else {
    std::printf("FAILED %lld %s\n", (long long)value,
                checked_in.status().ToString().c_str());
  }
  std::fflush(stdout);
}

int RunChurn(Workstation& ws, const Flags& flags) {
  for (uint64_t i = 0; i < flags.ops; ++i) {
    if (flags.sleep_ms > 0) usleep(static_cast<useconds_t>(flags.sleep_ms) * 1000);
    int64_t value = flags.value_base + static_cast<int64_t>(i);
    auto dop = ws.tm->BeginDop(DaId(flags.da));
    if (!dop.ok()) {
      std::printf("FAILED %lld begin: %s\n", (long long)value,
                  dop.status().ToString().c_str());
      std::fflush(stdout);
      continue;
    }
    ReportAttempt(ws.tm->CheckinCommit(*dop, ws.MakeObject(value), {}), value);
  }
  return 0;
}

int RunAbort(Workstation& ws, const Flags& flags) {
  for (uint64_t i = 0; i < flags.ops; ++i) {
    if (flags.sleep_ms > 0) usleep(static_cast<useconds_t>(flags.sleep_ms) * 1000);
    // Above the schema bound: the checkin participant's integrity
    // check fails, the vote is no, the 2PC aborts — deterministically.
    int64_t value = static_cast<int64_t>(tools::kPlaneValueMax) + 1 +
                    flags.value_base + static_cast<int64_t>(i);
    auto dop = ws.tm->BeginDop(DaId(flags.da));
    if (!dop.ok()) {
      std::printf("FAILED %lld begin: %s\n", (long long)value,
                  dop.status().ToString().c_str());
      std::fflush(stdout);
      continue;
    }
    auto checked_in = ws.tm->CheckinCommit(*dop, ws.MakeObject(value), {});
    if (checked_in.ok()) {
      std::printf("FAILED %lld out-of-bounds checkin committed\n",
                  (long long)value);
    } else if (checked_in.status().IsUnavailable()) {
      std::printf("INDOUBT %lld\n", (long long)value);
    } else {
      std::printf("ABORTED %lld\n", (long long)value);
    }
    std::fflush(stdout);
    ws.tm->AbortDop(*dop).ok();  // release the DOP either way
  }
  return 0;
}

int RunCrossfire(Workstation& ws, const Flags& flags) {
  // Seed one source DOV per attempt on the first DA's shard. A fresh
  // source per attempt keeps attempts independent: a derivation lock
  // stranded by a killed server never blocks the next attempt.
  std::vector<std::pair<DovId, int64_t>> seeds;
  for (uint64_t i = 0; i < flags.ops; ++i) {
    int64_t value = flags.value_base + static_cast<int64_t>(i);
    auto dop = ws.tm->BeginDop(DaId(flags.da));
    if (!dop.ok()) {
      std::printf("FAILED %lld seed-begin: %s\n", (long long)value,
                  dop.status().ToString().c_str());
      std::fflush(stdout);
      continue;
    }
    auto seed = ws.tm->CheckinCommit(*dop, ws.MakeObject(value), {});
    ReportAttempt(seed, value);
    if (seed.ok()) seeds.emplace_back(*seed, value);
  }
  // Cross-shard attempts: checkout (participant: seed's shard, with a
  // derivation lock so commit must release it there) + checkin
  // (participant: --home2). Kill a server between phase 1 and the
  // decision and this is exactly the in-doubt window the durable 2PC
  // ledger exists for.
  for (auto [seed, seed_value] : seeds) {
    if (flags.sleep_ms > 0) usleep(static_cast<useconds_t>(flags.sleep_ms) * 1000);
    int64_t value = seed_value + 100000;
    auto dop = ws.tm->BeginDop(DaId(flags.da2));
    if (!dop.ok()) {
      std::printf("FAILED %lld begin: %s\n", (long long)value,
                  dop.status().ToString().c_str());
      std::fflush(stdout);
      continue;
    }
    Status checkout = ws.tm->Checkout(*dop, seed, /*take_derivation_lock=*/true);
    if (!checkout.ok()) {
      std::printf("%s %lld checkout: %s\n",
                  checkout.IsUnavailable() ? "INDOUBT" : "FAILED",
                  (long long)value, checkout.ToString().c_str());
      std::fflush(stdout);
      ws.tm->AbortDop(*dop).ok();
      continue;
    }
    ReportAttempt(ws.tm->CheckinCommit(*dop, ws.MakeObject(value), {seed}),
                  value);
  }
  return 0;
}

int RunVerify(Workstation& ws, const Flags& flags) {
  std::ifstream in(flags.expect);
  if (!in) {
    std::fprintf(stderr, "cannot open --expect file %s\n",
                 flags.expect.c_str());
    return 2;
  }
  size_t total = 0;
  size_t ok = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    uint64_t dov_raw = 0;
    int64_t value = 0;
    uint64_t da = 0;
    if (!(fields >> dov_raw >> value >> da)) {
      std::fprintf(stderr, "bad expect line: %s\n", line.c_str());
      return 2;
    }
    ++total;
    DovId dov(dov_raw);
    auto dop = ws.tm->BeginDop(DaId(da));
    if (!dop.ok()) {
      std::printf("VERIFY MISSING %llu begin: %s\n",
                  (unsigned long long)dov_raw,
                  dop.status().ToString().c_str());
      continue;
    }
    Status checkout = ws.tm->Checkout(*dop, dov);
    if (!checkout.ok()) {
      std::printf("VERIFY MISSING %llu %s\n", (unsigned long long)dov_raw,
                  checkout.ToString().c_str());
      ws.tm->AbortDop(*dop).ok();
      continue;
    }
    auto object = ws.tm->Input(*dop, dov);
    double read = object.ok() ? object->GetNumeric("value").value_or(-1) : -1;
    if (read == static_cast<double>(value)) {
      std::printf("VERIFY OK %llu %lld\n", (unsigned long long)dov_raw,
                  (long long)value);
      ++ok;
    } else {
      std::printf("VERIFY MISMATCH %llu want %lld got %lld\n",
                  (unsigned long long)dov_raw, (long long)value,
                  (long long)read);
    }
    ws.tm->CommitDop(*dop).ok();
  }
  std::printf("VERIFIED %zu/%zu\n", ok, total);
  std::fflush(stdout);
  return ok == total ? 0 : 1;
}

int RunDump(Workstation& ws, const Flags& flags) {
  if (flags.home >= ws.channels.size()) {
    std::fprintf(stderr, "--home out of range\n");
    return 2;
  }
  auto dump = ws.channels[flags.home]->Call("admin/dump_da",
                                            std::to_string(flags.da));
  if (!dump.ok()) {
    std::fprintf(stderr, "dump failed: %s\n", dump.status().ToString().c_str());
    return 1;
  }
  std::fputs(dump->c_str(), stdout);
  std::fflush(stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--client-id", &value)) {
      flags.client_id = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--server", &value)) {
      flags.servers.push_back(value);
    } else if (ParseFlag(argv[i], "--mode", &value)) {
      flags.mode = value;
    } else if (ParseFlag(argv[i], "--da", &value)) {
      flags.da = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--home", &value)) {
      flags.home = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--da2", &value)) {
      flags.da2 = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--home2", &value)) {
      flags.home2 = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--ops", &value)) {
      flags.ops = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--value-base", &value)) {
      flags.value_base = std::strtoll(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--expect", &value)) {
      flags.expect = value;
    } else if (ParseFlag(argv[i], "--timeout-ms", &value)) {
      flags.timeout_ms = std::strtoll(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--sleep-ms", &value)) {
      flags.sleep_ms = std::strtoll(value.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return Usage(argv[0]);
    }
  }
  if (flags.servers.empty() || flags.mode.empty()) return Usage(argv[0]);

  Status status = Status::OK();
  Workstation ws(flags, &status);
  if (!status.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", status.ToString().c_str());
    return 2;
  }
  Status pinned = ws.PinHome(flags.da, flags.home);
  if (pinned.ok() && flags.da2 != 0) {
    pinned = ws.PinHome(flags.da2, flags.home2);
  }
  if (!pinned.ok()) {
    std::fprintf(stderr, "bad home pin: %s\n", pinned.ToString().c_str());
    return 2;
  }
  ws.StartTm();

  int rc;
  if (flags.mode == "churn") {
    rc = RunChurn(ws, flags);
  } else if (flags.mode == "abort") {
    rc = RunAbort(ws, flags);
  } else if (flags.mode == "crossfire") {
    rc = RunCrossfire(ws, flags);
  } else if (flags.mode == "verify") {
    rc = RunVerify(ws, flags);
  } else if (flags.mode == "dump") {
    rc = RunDump(ws, flags);
  } else {
    return Usage(argv[0]);
  }
  for (auto& channel : ws.channels) channel->Shutdown();
  return rc;
}
