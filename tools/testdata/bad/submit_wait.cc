// Fixture: submit-and-wait from executor context. The task body handed
// to Post() re-enters the engine and blocks on the future — an executor
// waiting on its own mailbox deadlocks.
// expect: submit-wait
#include <future>

namespace fixture {

class Engine {
 public:
  template <typename F>
  std::future<void> Post(size_t p, F f);
  template <typename F>
  auto Run(size_t p, F f);
};

class Bad {
 public:
  void Choreography() {
    engine_.Post(0, [this] {
      // BAD: nested submit-and-wait inside an executor task body.
      engine_.Run(1, [] { return 1; });
    });
  }

 private:
  Engine engine_;
};

}  // namespace fixture
