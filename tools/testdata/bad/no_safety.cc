// Fixture: NO_THREAD_SAFETY_ANALYSIS opt-out without a SAFETY: comment
// justifying it.
// expect: safety-comment
#include "common/sync.h"

namespace fixture {

class Bad {
 public:
  int UnsafeRead() const NO_THREAD_SAFETY_ANALYSIS { return counter_; }

 private:
  mutable concord::Mutex mu_;
  int counter_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
