// Fixture: raw standard-library synchronization members — every one of
// these must be spelled via the annotated wrappers in common/sync.h.
// expect: raw-sync
#include <condition_variable>
#include <mutex>

namespace fixture {

class Bad {
 public:
  void Touch() {
    std::lock_guard<std::mutex> lock(mu_);
    ++counter_;
  }

 private:
  mutable std::mutex mu_;
  std::recursive_mutex rmu_;
  std::condition_variable cv_;
  int counter_ = 0;
};

}  // namespace fixture
