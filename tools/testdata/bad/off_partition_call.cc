// Fixture: a partition-resident helper (the *In naming convention)
// called straight from choreography code instead of being routed to
// its owning executor — executor-owned state touched off-partition.
// expect: partition-in
namespace fixture {

class Engine {
 public:
  template <typename F>
  auto Run(size_t p, F f);
};

class Bad {
 public:
  int Choreography() {
    // BAD: LookupDopIn touches partition 0's slice but runs on the
    // dispatching thread without going through the engine.
    return LookupDopIn(0);
  }

 private:
  int LookupDopIn(size_t p) { return static_cast<int>(p); }

  Engine engine_;
};

}  // namespace fixture
