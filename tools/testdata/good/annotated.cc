// Fixture: the sanctioned concurrency idioms — annotated wrappers,
// choreography-side dispatch, SAFETY-commented opt-outs. The linter
// must report NOTHING here.
#include "common/sync.h"

namespace fixture {

class Engine {
 public:
  template <typename F>
  void Post(size_t p, F f);
  template <typename F>
  auto Run(size_t p, F f);
};

class Good {
 public:
  void Choreography() {
    // Dispatch + wait happens on the choreography thread: fine.
    engine_.Run(0, [this] { return StepIn(0); });
  }

  int stats() const {
    concord::MutexLock lock(&mu_);
    return counter_;
  }

  // SAFETY: benchmark-only fast path; the caller quiesced all
  // executors before reading.
  int UnsafeRead() const NO_THREAD_SAFETY_ANALYSIS { return counter_; }

 private:
  int StepIn(size_t p) {
    concord::MutexLock lock(&mu_);
    return ++counter_;
  }

  Engine engine_;
  mutable concord::Mutex mu_;
  int counter_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
