#!/usr/bin/env sh
# Gate for the partition-scaling bench: BENCH_partition_scaling.json
# must show the 4-partition run carrying >= 2x less load on its
# busiest executor than the single-partition run (the deterministic
# parallel-capacity ratio — see bench/bench_partition_scaling.cc for
# why the gate is not host-dependent wall clock). Uniform routing
# yields 4.0; a routing skew that funnels the hot path onto one
# executor drags it toward 1.0 and fails the gate. Usage:
#   tools/check_partition_scaling.sh [path-to-json] [min-ratio]
set -eu

JSON="${1:-BENCH_partition_scaling.json}"
MIN="${2:-2.0}"

if [ ! -f "$JSON" ]; then
  echo "check_partition_scaling: $JSON not found (run bench_partition_scaling first)" >&2
  exit 1
fi

# The bench emits the gate key on its own line: "x4_vs_x1": <ratio>
RATIO=$(awk -F': ' '/"x4_vs_x1"/ { gsub(/[,"]/, "", $2); print $2 }' "$JSON")

if [ -z "$RATIO" ]; then
  echo "check_partition_scaling: no x4_vs_x1 key in $JSON" >&2
  exit 1
fi

echo "partition scaling: x4_vs_x1 = $RATIO (required >= $MIN)"
awk -v r="$RATIO" -v m="$MIN" 'BEGIN { exit (r + 0 >= m + 0) ? 0 : 1 }' || {
  echo "check_partition_scaling: FAIL — the 4-partition bottleneck executor carries under ${MIN}x less load than the single-partition baseline (routing skew?)" >&2
  exit 1
}
echo "check_partition_scaling: OK"
