#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over every
# src/ translation unit, keyed off the compile_commands.json that the
# CMake configure always exports (CMAKE_EXPORT_COMPILE_COMMANDS is ON
# unconditionally — see CMakeLists.txt).
#
# Usage:
#   tools/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args...]
#
# Degrades gracefully: when clang-tidy is not installed (the default
# dev container ships GCC only) it prints a notice and exits 0 so the
# script can sit in pre-push hooks without breaking GCC-only setups.
# CI's clang-analysis job DOES have clang-tidy; there a missing binary
# must fail, so set CONCORD_REQUIRE_CLANG_TIDY=1 in that environment.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
shift || true
if [ "${1:-}" = "--" ]; then shift; fi

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  if [ "${CONCORD_REQUIRE_CLANG_TIDY:-0}" = "1" ]; then
    echo "run_clang_tidy: $TIDY not found and CONCORD_REQUIRE_CLANG_TIDY=1" >&2
    exit 1
  fi
  echo "run_clang_tidy: $TIDY not installed; skipping (GCC-only setup)."
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json missing." >&2
  echo "Configure first: cmake -S $ROOT -B $BUILD_DIR" >&2
  exit 1
fi

# run-clang-tidy parallelizes across TUs when available; otherwise fall
# back to a serial loop over the library sources.
if command -v run-clang-tidy >/dev/null 2>&1; then
  exec run-clang-tidy -clang-tidy-binary "$TIDY" -p "$BUILD_DIR" \
    -quiet "$ROOT/src/.*\.cc" "$@"
fi

STATUS=0
while IFS= read -r tu; do
  "$TIDY" -p "$BUILD_DIR" --quiet "$@" "$tu" || STATUS=1
done < <(find "$ROOT/src" -name '*.cc' | sort)
exit $STATUS
