// The socket transport (src/net/): frame codec against every
// fragmentation the stream can produce, envelope round trips, the
// bounded at-most-once dedup cache, and live loopback RPC over
// Unix-domain and TCP sockets — including server restart, reconnect
// backoff, and the at-most-once-across-eviction regression.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "net/address.h"
#include "net/frame.h"
#include "net/rpc_client.h"
#include "net/rpc_server.h"
#include "net/wire.h"
#include "rpc/dedup_cache.h"

namespace concord::net {
namespace {

std::string TestSocketPath(const char* tag) {
  return "/tmp/concord_net_test_" + std::string(tag) + "_" +
         std::to_string(getpid()) + ".sock";
}

// --- Frame codec -----------------------------------------------------------

TEST(FrameCodec, RoundTripsEveryType) {
  for (FrameType type :
       {FrameType::kRequest, FrameType::kReply, FrameType::kGoodbye}) {
    std::string wire;
    AppendFrame(&wire, type, "payload bytes");
    FrameDecoder decoder;
    decoder.Feed(wire);
    auto frame = decoder.Next();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->type, type);
    EXPECT_EQ(frame->payload, "payload bytes");
    EXPECT_TRUE(decoder.Next().status().IsUnavailable());
  }
}

TEST(FrameCodec, ReassemblesAtEverySplitPoint) {
  // One frame, split into two Feeds at every possible byte boundary:
  // the decoder must produce the identical frame regardless of where
  // the kernel happened to cut the stream.
  std::string wire;
  AppendFrame(&wire, FrameType::kRequest, "split-point payload");
  for (size_t split = 0; split <= wire.size(); ++split) {
    FrameDecoder decoder;
    decoder.Feed(std::string_view(wire).substr(0, split));
    if (split < wire.size()) {
      EXPECT_TRUE(decoder.Next().status().IsUnavailable())
          << "complete frame from " << split << " bytes?";
      decoder.Feed(std::string_view(wire).substr(split));
    }
    auto frame = decoder.Next();
    ASSERT_TRUE(frame.ok()) << "split at " << split;
    EXPECT_EQ(frame->payload, "split-point payload");
  }
}

TEST(FrameCodec, SingleByteFeedAcrossBackToBackFrames) {
  std::string wire;
  AppendFrame(&wire, FrameType::kRequest, "first");
  AppendFrame(&wire, FrameType::kReply, "second frame payload");
  AppendFrame(&wire, FrameType::kGoodbye, "x");
  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (char byte : wire) {
    decoder.Feed(std::string_view(&byte, 1));
    auto frame = decoder.Next();
    if (frame.ok()) frames.push_back(std::move(*frame));
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].payload, "first");
  EXPECT_EQ(frames[1].payload, "second frame payload");
  EXPECT_EQ(frames[2].type, FrameType::kGoodbye);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameCodec, RandomFragmentationFuzz) {
  // 100 random frame sequences, each delivered in random-size chunks:
  // every frame must come back intact and in order.
  std::mt19937 rng(20260808);
  for (int round = 0; round < 100; ++round) {
    std::vector<std::string> payloads;
    std::string wire;
    int frames = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < frames; ++f) {
      size_t len = 1 + rng() % 5000;
      std::string payload(len, '\0');
      for (char& c : payload) c = static_cast<char>(rng());
      AppendFrame(&wire, FrameType::kRequest, payload);
      payloads.push_back(std::move(payload));
    }
    FrameDecoder decoder;
    size_t offset = 0;
    size_t decoded = 0;
    while (offset < wire.size()) {
      size_t chunk = 1 + rng() % 512;
      chunk = std::min(chunk, wire.size() - offset);
      decoder.Feed(std::string_view(wire).substr(offset, chunk));
      offset += chunk;
      while (true) {
        auto frame = decoder.Next();
        if (!frame.ok()) {
          ASSERT_TRUE(frame.status().IsUnavailable())
              << frame.status().ToString();
          break;
        }
        ASSERT_LT(decoded, payloads.size());
        EXPECT_EQ(frame->payload, payloads[decoded]);
        ++decoded;
      }
    }
    EXPECT_EQ(decoded, payloads.size());
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

TEST(FrameCodec, RejectsZeroLengthFrame) {
  // Hand-build a header with payload_len = 0 (AppendFrame refuses to).
  std::string wire;
  AppendFrame(&wire, FrameType::kRequest, "x");
  wire[5] = wire[6] = wire[7] = wire[8] = 0;  // len field := 0
  FrameDecoder decoder;
  decoder.Feed(wire);
  EXPECT_FALSE(decoder.Next().ok());
  EXPECT_TRUE(decoder.broken());
}

TEST(FrameCodec, RejectsOversizedFrame) {
  std::string wire;
  AppendFrame(&wire, FrameType::kRequest, "x");
  wire[5] = wire[6] = wire[7] = wire[8] = (char)0xFF;  // len ~= 4GiB
  FrameDecoder decoder;
  decoder.Feed(wire);
  EXPECT_FALSE(decoder.Next().ok());
  EXPECT_TRUE(decoder.broken());
}

TEST(FrameCodec, GarbageHeaderIsSticky) {
  FrameDecoder decoder;
  decoder.Feed("GET / HTTP/1.1\r\n");
  EXPECT_FALSE(decoder.Next().ok());
  EXPECT_TRUE(decoder.broken());
  // A valid frame after the garbage must NOT resynchronize the stream.
  std::string wire;
  AppendFrame(&wire, FrameType::kRequest, "late");
  decoder.Feed(wire);
  EXPECT_FALSE(decoder.Next().ok());
}

TEST(FrameCodec, BadTypeAndBadCrcTearDown) {
  std::string wire;
  AppendFrame(&wire, FrameType::kRequest, "abc");
  std::string bad_type = wire;
  bad_type[4] = 42;  // no such FrameType
  FrameDecoder type_decoder;
  type_decoder.Feed(bad_type);
  EXPECT_TRUE(type_decoder.Next().status().IsProtocolViolation());

  std::string bad_crc = wire;
  bad_crc.back() ^= 0x01;  // corrupt payload, CRC now mismatches
  FrameDecoder crc_decoder;
  crc_decoder.Feed(bad_crc);
  EXPECT_FALSE(crc_decoder.Next().ok());
  EXPECT_TRUE(crc_decoder.broken());
}

TEST(FrameCodec, HonorsCustomPayloadBound) {
  std::string wire;
  AppendFrame(&wire, FrameType::kRequest, std::string(128, 'p'));
  FrameDecoder decoder(/*max_payload=*/64);
  decoder.Feed(wire);
  EXPECT_FALSE(decoder.Next().ok());
}

// --- Envelopes -------------------------------------------------------------

TEST(WireEnvelopes, RequestRoundTrip) {
  RequestEnvelope request;
  request.client_id = 7;
  request.call_id = 1234;
  request.acked_below = 1200;
  request.method = "txn.ServerService/Execute";
  request.payload = std::string("\x00\x01payload", 9);
  auto decoded = DecodeRequestEnvelope(EncodeRequestEnvelope(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->client_id, 7u);
  EXPECT_EQ(decoded->call_id, 1234u);
  EXPECT_EQ(decoded->acked_below, 1200u);
  EXPECT_EQ(decoded->method, request.method);
  EXPECT_EQ(decoded->payload, request.payload);
}

TEST(WireEnvelopes, ReplyRoundTripCarriesTypedStatus) {
  ReplyEnvelope reply;
  reply.call_id = 99;
  reply.status = Status::NotFound("no such DOV");
  auto decoded = DecodeReplyEnvelope(EncodeReplyEnvelope(reply));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->call_id, 99u);
  EXPECT_TRUE(decoded->status.IsNotFound());
  EXPECT_NE(decoded->status.ToString().find("no such DOV"), std::string::npos);
}

TEST(WireEnvelopes, TruncationAndTrailingBytesRejected) {
  RequestEnvelope request;
  request.client_id = 1;
  request.call_id = 2;
  request.method = "m";
  request.payload = "p";
  std::string bytes = EncodeRequestEnvelope(request);
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(
        DecodeRequestEnvelope(std::string_view(bytes).substr(0, len)).ok())
        << "decoded from " << len << " of " << bytes.size() << " bytes";
  }
  EXPECT_FALSE(DecodeRequestEnvelope(bytes + "trailing").ok());
}

// --- DedupCache ------------------------------------------------------------

TEST(DedupCache, HitRefreshesAndCounts) {
  rpc::DedupCache cache(4);
  cache.Insert(1, 10, "r10");
  EXPECT_TRUE(cache.Contains(1, 10));
  auto hit = cache.Lookup(1, 10);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "r10");
  EXPECT_FALSE(cache.Lookup(1, 11).has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(DedupCache, EnforcesPerPeerBound) {
  rpc::DedupCache cache(3);
  for (uint64_t call = 0; call < 10; ++call) {
    cache.Insert(1, call, "r" + std::to_string(call));
  }
  EXPECT_EQ(cache.PeerEntries(1), 3u);
  EXPECT_EQ(cache.stats().evictions, 7u);
  // The three most recent survive; the horizon has passed the rest.
  EXPECT_TRUE(cache.Contains(1, 9));
  EXPECT_TRUE(cache.Contains(1, 8));
  EXPECT_TRUE(cache.Contains(1, 7));
  EXPECT_FALSE(cache.Contains(1, 0));
  // Peers are bounded independently.
  cache.Insert(2, 0, "other");
  EXPECT_EQ(cache.PeerEntries(2), 1u);
  EXPECT_EQ(cache.PeerEntries(1), 3u);
}

TEST(DedupCache, PinnedEntriesSurviveEviction) {
  rpc::DedupCache cache(2);
  cache.Insert(1, 1, "pinned", /*pinned=*/true);
  for (uint64_t call = 2; call < 12; ++call) {
    cache.Insert(1, call, "r");
  }
  // The pinned entry outlives ten younger inserts into a 2-slot peer.
  EXPECT_TRUE(cache.Contains(1, 1));
  EXPECT_EQ(cache.PeerEntries(1), 2u);
  cache.Unpin(1, 1, /*keep=*/true);
  cache.Insert(1, 100, "r");
  cache.Insert(1, 101, "r");
  EXPECT_FALSE(cache.Contains(1, 1));  // unpinned: evictable again
}

TEST(DedupCache, PruneBelowDropsAckedEntries) {
  rpc::DedupCache cache(64);
  for (uint64_t call = 0; call < 10; ++call) cache.Insert(1, call, "r");
  cache.PruneBelow(1, 7);
  EXPECT_EQ(cache.PeerEntries(1), 3u);
  EXPECT_FALSE(cache.Contains(1, 6));
  EXPECT_TRUE(cache.Contains(1, 7));
  EXPECT_EQ(cache.stats().pruned, 7u);
  cache.ErasePeer(1);
  EXPECT_EQ(cache.PeerEntries(1), 0u);
}

// --- Loopback RPC ----------------------------------------------------------

class LoopbackRpcTest : public ::testing::TestWithParam<bool> {
 protected:
  Address ListenAddress(const char* tag) {
    if (GetParam()) return Address::Tcp("127.0.0.1", 0);
    return Address::Unix(TestSocketPath(tag));
  }
};

INSTANTIATE_TEST_SUITE_P(UnixAndTcp, LoopbackRpcTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Tcp" : "Unix";
                         });

TEST_P(LoopbackRpcTest, EchoAndConcurrentCallers) {
  RpcServer server(ListenAddress("echo"));
  std::atomic<int> executed{0};
  server.RegisterMethod("test/echo",
                        [&](const std::string& request) -> Result<std::string> {
                          ++executed;
                          return "echo:" + request;
                        });
  ASSERT_TRUE(server.Start().ok());
  RpcChannel channel(/*client_id=*/1, server.bound_address());

  auto reply = channel.Call("test/echo", "one");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(*reply, "echo:one");

  // Concurrent callers multiplex one connection.
  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 25;
  std::atomic<int> ok_replies{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        std::string body = std::to_string(t) + ":" + std::to_string(i);
        auto r = channel.Call("test/echo", body);
        if (r.ok() && *r == "echo:" + body) ++ok_replies;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ok_replies.load(), kThreads * kCallsPerThread);
  EXPECT_EQ(executed.load(), kThreads * kCallsPerThread + 1);
  channel.Shutdown();
  server.Shutdown();
}

TEST_P(LoopbackRpcTest, TypedHandlerErrorsAndUnknownMethod) {
  RpcServer server(ListenAddress("err"));
  server.RegisterMethod("test/fail",
                        [](const std::string&) -> Result<std::string> {
                          return Status::FailedPrecondition("typed failure");
                        });
  ASSERT_TRUE(server.Start().ok());
  RpcChannel channel(1, server.bound_address());
  auto failed = channel.Call("test/fail", "x");
  EXPECT_TRUE(failed.status().IsFailedPrecondition())
      << failed.status().ToString();
  auto unknown = channel.Call("test/nope", "x");
  EXPECT_TRUE(unknown.status().IsNotFound()) << unknown.status().ToString();
  channel.Shutdown();
  server.Shutdown();
}

TEST_P(LoopbackRpcTest, LargePayloadRoundTrip) {
  RpcServer server(ListenAddress("large"));
  server.RegisterMethod("test/echo",
                        [](const std::string& request) -> Result<std::string> {
                          return request;
                        });
  ASSERT_TRUE(server.Start().ok());
  RpcChannel channel(1, server.bound_address());
  std::string big(3 << 20, 'b');  // 3 MiB: many partial reads/writes
  for (size_t i = 0; i < big.size(); i += 4096) big[i] = char('a' + i % 26);
  auto reply = channel.Call("test/echo", big);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(*reply, big);
  channel.Shutdown();
  server.Shutdown();
}

TEST(LoopbackRpc, ConnectsLazilyAndRidesOutSlowServerStart) {
  // The channel exists before the server: first call retries through
  // connect backoff until the listener appears.
  Address address = Address::Unix(TestSocketPath("slowstart"));
  RpcChannel::Options options;
  options.call_timeout_ms = 10000;
  RpcChannel channel(1, address, options);
  std::thread late_server([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    static RpcServer* server = new RpcServer(address);
    server->RegisterMethod("test/echo",
                           [](const std::string& request)
                               -> Result<std::string> { return request; });
    ASSERT_TRUE(server->Start().ok());
  });
  auto reply = channel.Call("test/echo", "patient");
  late_server.join();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(*reply, "patient");
  EXPECT_GT(channel.stats().connect_failures, 0u);
  channel.Shutdown();
}

TEST(LoopbackRpc, DuplicateCallIdsAnsweredFromDedupCache) {
  // Two raw requests with the SAME (client, call) id: the handler must
  // run once, the second reply must come from the server's dedup cache.
  Address address = Address::Unix(TestSocketPath("dedup"));
  RpcServer server(address);
  std::atomic<int> executed{0};
  server.RegisterMethod("test/count",
                        [&](const std::string&) -> Result<std::string> {
                          return std::to_string(++executed);
                        });
  ASSERT_TRUE(server.Start().ok());

  // Speak the wire protocol directly to control call ids.
  int fd = -1;
  {
    auto connecting = StartConnect(server.bound_address());
    ASSERT_TRUE(connecting.ok());
    fd = *connecting;
    // Blocking mode keeps this test sequential and simple.
    for (int spin = 0; spin < 1000; ++spin) {
      if (FinishConnect(fd).ok()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  RequestEnvelope request;
  request.client_id = 77;
  request.call_id = 5;
  request.method = "test/count";
  request.payload = "x";
  // Send the request, await its reply, then send the IDENTICAL request
  // again — the retry-after-reply shape a reconnecting client produces.
  FrameDecoder decoder;
  std::vector<std::string> replies;
  char buffer[4096];
  for (int attempt = 0; attempt < 2; ++attempt) {
    std::string wire;
    AppendFrame(&wire, FrameType::kRequest, EncodeRequestEnvelope(request));
    ASSERT_EQ(write(fd, wire.data(), wire.size()),
              static_cast<ssize_t>(wire.size()));
    size_t want = replies.size() + 1;
    while (replies.size() < want) {
      ssize_t n = read(fd, buffer, sizeof(buffer));
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      ASSERT_GT(n, 0);
      decoder.Feed(std::string_view(buffer, static_cast<size_t>(n)));
      while (true) {
        auto frame = decoder.Next();
        if (!frame.ok()) break;
        auto reply = DecodeReplyEnvelope(frame->payload);
        ASSERT_TRUE(reply.ok());
        replies.push_back(reply->payload);
      }
    }
  }
  CloseFd(fd);
  EXPECT_EQ(executed.load(), 1);
  EXPECT_EQ(replies[0], "1");
  EXPECT_EQ(replies[1], "1");  // cached, not re-executed
  EXPECT_GE(server.stats().dedup_hits + server.stats().duplicate_in_flight,
            1u);
  server.Shutdown();
}

TEST(LoopbackRpc, AckedBelowPrunesServerDedup) {
  Address address = Address::Unix(TestSocketPath("ack"));
  RpcServer server(address);
  server.RegisterMethod("test/echo",
                        [](const std::string& request)
                            -> Result<std::string> { return request; });
  ASSERT_TRUE(server.Start().ok());
  RpcChannel channel(/*client_id=*/9, address);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(channel.Call("test/echo", "x").ok());
  }
  // Sequential callers ack everything below the live call: at most the
  // last call's entry can remain.
  EXPECT_LE(server.dedup().PeerEntries(9), 1u);
  channel.Shutdown();
  server.Shutdown();
}

TEST(LoopbackRpc, AtMostOncePerIncarnationAcrossServerRestart) {
  // Kill the server between calls; the channel reconnects to the new
  // incarnation and keeps working. (At-most-once across the restart is
  // the transaction layer's job — this pins the transport contract:
  // fresh incarnation, fresh dedup table, calls still succeed.)
  Address address = Address::Unix(TestSocketPath("restart"));
  std::atomic<int> executed{0};
  auto handler = [&](const std::string& request) -> Result<std::string> {
    ++executed;
    return request;
  };
  auto first = std::make_unique<RpcServer>(address);
  first->RegisterMethod("test/echo", handler);
  ASSERT_TRUE(first->Start().ok());

  RpcChannel::Options options;
  options.call_timeout_ms = 10000;
  RpcChannel channel(1, address, options);
  ASSERT_TRUE(channel.Call("test/echo", "before").ok());
  first->Shutdown();
  first.reset();

  auto second = std::make_unique<RpcServer>(address);
  second->RegisterMethod("test/echo", handler);
  ASSERT_TRUE(second->Start().ok());
  auto reply = channel.Call("test/echo", "after");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(*reply, "after");
  EXPECT_EQ(executed.load(), 2);
  EXPECT_GE(channel.stats().reconnects, 1u);
  channel.Shutdown();
  second->Shutdown();
}

TEST(LoopbackRpc, GarbageSpeakerIsTornDownWithoutHarmingOthers) {
  Address address = Address::Unix(TestSocketPath("garbage"));
  RpcServer server(address);
  server.RegisterMethod("test/echo",
                        [](const std::string& request)
                            -> Result<std::string> { return request; });
  ASSERT_TRUE(server.Start().ok());

  // A peer speaking HTTP at us: connection torn down, error counted.
  auto connecting = StartConnect(address);
  ASSERT_TRUE(connecting.ok());
  int fd = *connecting;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const char kGarbage[] = "GET / HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_GT(write(fd, kGarbage, sizeof(kGarbage) - 1), 0);
  char buffer[128];
  for (int spin = 0; spin < 2000; ++spin) {
    ssize_t n = read(fd, buffer, sizeof(buffer));
    if (n == 0) break;  // server closed on us — expected
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  CloseFd(fd);
  EXPECT_GE(server.stats().protocol_errors, 1u);

  // An honest client on the same server still works.
  RpcChannel channel(1, address);
  auto reply = channel.Call("test/echo", "still fine");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  channel.Shutdown();
  server.Shutdown();
}

TEST(LoopbackRpc, CallTimesOutAgainstDeadAddress) {
  RpcChannel::Options options;
  options.call_timeout_ms = 300;
  RpcChannel channel(1, Address::Unix(TestSocketPath("nobody")), options);
  auto reply = channel.Call("test/echo", "anyone?");
  EXPECT_TRUE(reply.status().IsUnavailable()) << reply.status().ToString();
  EXPECT_GE(channel.stats().timeouts, 1u);
  channel.Shutdown();
}

}  // namespace
}  // namespace concord::net
