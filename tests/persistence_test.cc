#include <gtest/gtest.h>

#include <cmath>

#include "cooperation/persistence.h"

namespace concord::cooperation::persistence {
namespace {

using storage::DesignSpecification;
using storage::Feature;

TEST(PersistenceTest, FeatureRangeRoundtrip) {
  Feature f = Feature::Range("area_limit", "area", 1.5, 99.25);
  auto back = DeserializeFeature(SerializeFeature(f));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->name(), "area_limit");
  EXPECT_EQ(back->kind(), Feature::Kind::kRange);
  EXPECT_DOUBLE_EQ(back->min(), 1.5);
  EXPECT_DOUBLE_EQ(back->max(), 99.25);
}

TEST(PersistenceTest, FeatureOpenBoundsRoundtrip) {
  Feature f = Feature::AtMost("w", "width", 10);
  auto back = DeserializeFeature(SerializeFeature(f));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(std::isinf(back->min()));
  EXPECT_LT(back->min(), 0);
  EXPECT_DOUBLE_EQ(back->max(), 10);
}

TEST(PersistenceTest, FeatureEqualityRoundtripAllValueTypes) {
  for (const storage::AttrValue& value :
       {storage::AttrValue(int64_t{7}), storage::AttrValue(2.5),
        storage::AttrValue("floorplan"), storage::AttrValue(true)}) {
    Feature f = Feature::Equals("goal", "domain", value);
    auto back = DeserializeFeature(SerializeFeature(f));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back->equals_value(), value);
  }
}

TEST(PersistenceTest, FeaturePredicateRoundtrip) {
  Feature f = Feature::PassesTool("drc_clean", "drc_checker");
  auto back = DeserializeFeature(SerializeFeature(f));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->kind(), Feature::Kind::kPredicate);
  EXPECT_EQ(back->tool_name(), "drc_checker");
}

TEST(PersistenceTest, BadFeatureTextRejected) {
  EXPECT_FALSE(DeserializeFeature("").ok());
  EXPECT_FALSE(DeserializeFeature("X|a|b").ok());
  EXPECT_FALSE(DeserializeFeature("R|only|two").ok());
}

TEST(PersistenceTest, SpecRoundtripPreservesOrder) {
  DesignSpecification spec;
  spec.Add(Feature::AtMost("a", "area", 10));
  spec.Add(Feature::Equals("d", "domain", storage::AttrValue("mask")));
  spec.Add(Feature::PassesTool("t", "tool"));
  auto back = DeserializeSpec(SerializeSpec(spec));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 3u);
  EXPECT_EQ(back->features()[0].name(), "a");
  EXPECT_EQ(back->features()[2].name(), "t");
}

TEST(PersistenceTest, EmptySpecRoundtrip) {
  auto back = DeserializeSpec("");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(PersistenceTest, DaRoundtrip) {
  DesignActivity da;
  da.id = DaId(7);
  da.dot = DotId(3);
  da.initial_dov = DovId(42);
  da.designer = DesignerId(2);
  da.state = DaState::kReadyForTermination;
  da.parent = DaId(1);
  da.workstation = NodeId(4);
  da.children = {DaId(8), DaId(9)};
  da.final_dovs = {DovId(100)};
  da.impossible_reported = true;
  da.spec.Add(Feature::AtMost("area_limit", "area", 55));

  auto back = DeserializeDa(SerializeDa(da));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->id, DaId(7));
  EXPECT_EQ(back->dot, DotId(3));
  ASSERT_TRUE(back->initial_dov.has_value());
  EXPECT_EQ(*back->initial_dov, DovId(42));
  EXPECT_EQ(back->state, DaState::kReadyForTermination);
  EXPECT_EQ(back->parent, DaId(1));
  EXPECT_EQ(back->workstation, NodeId(4));
  EXPECT_EQ(back->children, (std::vector<DaId>{DaId(8), DaId(9)}));
  EXPECT_EQ(back->final_dovs, std::vector<DovId>{DovId(100)});
  EXPECT_TRUE(back->impossible_reported);
  EXPECT_DOUBLE_EQ(back->spec.Find("area_limit")->max(), 55);
}

TEST(PersistenceTest, DaWithoutOptionalFields) {
  DesignActivity da;
  da.id = DaId(1);
  da.dot = DotId(1);
  auto back = DeserializeDa(SerializeDa(da));
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back->initial_dov.has_value());
  EXPECT_FALSE(back->parent.valid());
  EXPECT_TRUE(back->children.empty());
  EXPECT_TRUE(back->spec.empty());
}

TEST(PersistenceTest, DaWithoutIdRejected) {
  EXPECT_FALSE(DeserializeDa("dot=1\n").ok());
  EXPECT_FALSE(DeserializeDa("garbage line without equals\n").ok());
}

TEST(PersistenceTest, RelationshipsRoundtrip) {
  std::vector<CoopRelationship> rels;
  CoopRelationship delegation;
  delegation.id = RelId(1);
  delegation.kind = RelKind::kDelegation;
  delegation.from = DaId(1);
  delegation.to = DaId(2);
  rels.push_back(delegation);
  CoopRelationship usage;
  usage.id = RelId(2);
  usage.kind = RelKind::kUsage;
  usage.from = DaId(3);
  usage.to = DaId(2);
  usage.features = {"area_limit", "goal"};
  usage.active = false;
  rels.push_back(usage);

  auto back = DeserializeRelationships(SerializeRelationships(rels));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].kind, RelKind::kDelegation);
  EXPECT_EQ((*back)[1].features,
            (std::vector<std::string>{"area_limit", "goal"}));
  EXPECT_FALSE((*back)[1].active);
}

TEST(PersistenceTest, EmptyRelationshipsRoundtrip) {
  auto back = DeserializeRelationships("");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(PersistenceTest, ProposalRoundtrip) {
  Proposal p;
  p.relationship = RelId(5);
  p.from = DaId(2);
  p.to = DaId(3);
  p.for_from = {Feature::AtMost("area_limit", "area", 120)};
  p.for_to = {Feature::AtMost("area_limit", "area", 80),
              Feature::AtLeast("height", "h", 2)};
  auto back = DeserializeProposal(SerializeProposal(p));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->relationship, RelId(5));
  EXPECT_EQ(back->from, DaId(2));
  EXPECT_EQ(back->to, DaId(3));
  ASSERT_EQ(back->for_from.size(), 1u);
  ASSERT_EQ(back->for_to.size(), 2u);
  EXPECT_DOUBLE_EQ(back->for_to[0].max(), 80);
}

}  // namespace
}  // namespace concord::cooperation::persistence
