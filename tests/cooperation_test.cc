#include <gtest/gtest.h>

#include <memory>

#include "cooperation/cooperation_manager.h"
#include "cooperation/persistence.h"
#include "storage/repository.h"
#include "txn/lock_manager.h"

namespace concord::cooperation {
namespace {

using storage::DesignSpecification;
using storage::Feature;

/// Fixture: repository with the part-of chain chip > module > block,
/// a CM over a fresh lock manager, and helpers to mint DAs and DOVs.
class CmTest : public ::testing::Test {
 protected:
  CmTest() : repo_(&clock_), cm_(&repo_, &locks_, &clock_) {
    auto* block = repo_.schema().DefineType("block");
    auto* module = repo_.schema().DefineType("module");
    auto* chip = repo_.schema().DefineType("chip");
    block->AddAttr({"area", storage::AttrType::kDouble, false, {}, {}});
    module->AddAttr({"area", storage::AttrType::kDouble, false, {}, {}});
    chip->AddAttr({"area", storage::AttrType::kDouble, false, {}, {}});
    module->AddPart({block->id(), 0, 100});
    chip->AddPart({module->id(), 0, 100});
    chip_ = chip->id();
    module_ = module->id();
    block_ = block->id();
    cm_.SetEventSink([this](DaId da, const workflow::Event& event) {
      events_.push_back({da, event});
    });
  }

  DaDescription Desc(DotId dot, DesignSpecification spec = {}) {
    DaDescription d;
    d.dot = dot;
    d.spec = std::move(spec);
    d.designer = DesignerId(1);
    d.workstation = NodeId(1);
    return d;
  }

  /// Top-level DA in the active state.
  DaId Top(DesignSpecification spec = {}) {
    DaId da = *cm_.InitDesign(Desc(chip_, std::move(spec)));
    cm_.Start(da).ok();
    return da;
  }

  DaId Sub(DaId super, DesignSpecification spec = {}, DotId dot = DotId()) {
    DaId da = *cm_.CreateSubDa(super,
                               Desc(dot.valid() ? dot : module_,
                                    std::move(spec)));
    cm_.Start(da).ok();
    return da;
  }

  /// Commits one DOV owned by `da` with the given area and registers
  /// the scope lock (as the server-TM's checkin would).
  DovId MintDov(DaId da, double area, DotId dot = DotId()) {
    TxnId txn = repo_.Begin();
    storage::DovRecord record;
    record.id = repo_.NextDovId();
    record.owner_da = da;
    record.type = dot.valid() ? dot : module_;
    record.data = storage::DesignObject(record.type);
    record.data.SetAttr("area", area);
    repo_.Put(txn, record).ok();
    repo_.Commit(txn).ok();
    locks_.SetScopeOwner(record.id, da);
    cm_.NoteCheckin(da, record.id);
    return record.id;
  }

  /// Events delivered to `da`, by type.
  int EventCount(DaId da, const std::string& type) {
    int count = 0;
    for (const auto& [target, event] : events_) {
      if (target == da && event.type == type) ++count;
    }
    return count;
  }

  SimClock clock_;
  storage::Repository repo_;
  txn::LockManager locks_;
  CooperationManager cm_;
  DotId chip_;
  DotId module_;
  DotId block_;
  std::vector<std::pair<DaId, workflow::Event>> events_;
};

// --- Hierarchy / delegation -------------------------------------------------

TEST_F(CmTest, InitDesignStartsGenerated) {
  DaId da = *cm_.InitDesign(Desc(chip_));
  EXPECT_EQ(*cm_.StateOf(da), DaState::kGenerated);
  EXPECT_TRUE(cm_.Start(da).ok());
  EXPECT_EQ(*cm_.StateOf(da), DaState::kActive);
  // Start is not repeatable.
  EXPECT_TRUE(cm_.Start(da).IsProtocolViolation());
}

TEST_F(CmTest, CreateSubDaChecksPartOf) {
  DaId top = Top();
  EXPECT_TRUE(cm_.CreateSubDa(top, Desc(module_)).ok());
  EXPECT_TRUE(cm_.CreateSubDa(top, Desc(block_)).ok());  // transitive part
  // A chip is not part of a chip's module.
  DaId sub = Sub(top);
  EXPECT_TRUE(cm_.CreateSubDa(sub, Desc(chip_)).status().IsProtocolViolation());
}

TEST_F(CmTest, CreateSubDaRequiresActiveParent) {
  DaId da = *cm_.InitDesign(Desc(chip_));
  EXPECT_TRUE(
      cm_.CreateSubDa(da, Desc(module_)).status().IsProtocolViolation());
}

TEST_F(CmTest, DelegationRelationshipRecorded) {
  DaId top = Top();
  DaId sub = Sub(top);
  auto rels = cm_.RelationshipsOf(sub);
  ASSERT_EQ(rels.size(), 1u);
  EXPECT_EQ(rels[0].kind, RelKind::kDelegation);
  EXPECT_EQ(rels[0].from, top);
  EXPECT_EQ(rels[0].to, sub);
  EXPECT_EQ(cm_.Children(top), std::vector<DaId>{sub});
  EXPECT_EQ(cm_.Depth(sub), 1);
  EXPECT_EQ(cm_.Depth(top), 0);
}

TEST_F(CmTest, InitialDovMustBeInSuperScope) {
  DaId top = Top();
  DovId owned = MintDov(top, 10);
  DovId foreign = MintDov(DaId(999), 10);

  DaDescription ok_desc = Desc(module_);
  ok_desc.initial_dov = owned;
  EXPECT_TRUE(cm_.CreateSubDa(top, ok_desc).ok());

  DaDescription bad_desc = Desc(module_);
  bad_desc.initial_dov = foreign;
  EXPECT_TRUE(cm_.CreateSubDa(top, bad_desc).status().IsProtocolViolation());
}

TEST_F(CmTest, SubDaSeesItsInitialDov) {
  DaId top = Top();
  DovId dov0 = MintDov(top, 10);
  DaDescription desc = Desc(module_);
  desc.initial_dov = dov0;
  DaId sub = *cm_.CreateSubDa(top, desc);
  EXPECT_TRUE(cm_.InScope(sub, dov0));
}

// --- Evaluate / final DOVs ---------------------------------------------------

TEST_F(CmTest, EvaluateMarksFinalAndPersists) {
  DesignSpecification spec;
  spec.Add(Feature::AtMost("area_limit", "area", 100));
  DaId top = Top();
  DaId sub = Sub(top, spec);
  DovId good = MintDov(sub, 50);
  DovId bad = MintDov(sub, 500);

  auto q_good = cm_.Evaluate(sub, good);
  ASSERT_TRUE(q_good.ok());
  EXPECT_TRUE(q_good->is_final());
  EXPECT_TRUE((*repo_.Get(good)).final_dov);

  auto q_bad = cm_.Evaluate(sub, bad);
  EXPECT_FALSE(q_bad->is_final());
  EXPECT_FALSE((*repo_.Get(bad)).final_dov);
  EXPECT_EQ((*cm_.GetDa(sub))->final_dovs, std::vector<DovId>{good});
}

TEST_F(CmTest, EvaluateRequiresScope) {
  DaId top = Top();
  DaId sub = Sub(top);
  DovId other = MintDov(DaId(42), 10);
  EXPECT_TRUE(cm_.Evaluate(sub, other).status().IsProtocolViolation());
}

// --- Ready-to-commit / termination ------------------------------------------

TEST_F(CmTest, ReadyToCommitNeedsFinalDov) {
  DaId top = Top();
  DaId sub = Sub(top);
  EXPECT_TRUE(cm_.SubDaReadyToCommit(sub).IsProtocolViolation());
  DovId dov = MintDov(sub, 10);
  cm_.Evaluate(sub, dov).ok();  // empty spec -> final
  EXPECT_TRUE(cm_.SubDaReadyToCommit(sub).ok());
  EXPECT_EQ(*cm_.StateOf(sub), DaState::kReadyForTermination);
  EXPECT_EQ(EventCount(top, "Sub_DA_Ready_To_Commit"), 1);
}

TEST_F(CmTest, SuperReadsFinalsAtReadyForTermination) {
  DaId top = Top();
  DaId sub = Sub(top);
  DovId dov = MintDov(sub, 10);
  cm_.Evaluate(sub, dov).ok();
  EXPECT_FALSE(cm_.InScope(top, dov));  // inheritance difference #1
  cm_.SubDaReadyToCommit(sub).ok();
  EXPECT_TRUE(cm_.InScope(top, dov));
}

TEST_F(CmTest, TerminationInheritsScopeLocks) {
  DaId top = Top();
  DaId sub = Sub(top);
  DovId final_dov = MintDov(sub, 10);
  DovId preliminary = MintDov(sub, 20);
  cm_.Evaluate(sub, final_dov).ok();
  // Only the final DOV was evaluated final (empty spec -> both final);
  // use a spec to distinguish.
  cm_.SubDaReadyToCommit(sub).ok();
  ASSERT_TRUE(cm_.TerminateSubDa(top, sub).ok());
  EXPECT_EQ(*cm_.StateOf(sub), DaState::kTerminated);
  EXPECT_EQ(locks_.ScopeOwner(final_dov), top);
  // Preliminary DOVs stay with the (terminated) sub-DA.
  EXPECT_EQ(locks_.ScopeOwner(preliminary), sub);
}

TEST_F(CmTest, TerminationBlockedByOpenGrandchildren) {
  DaId top = Top();
  DaId sub = Sub(top);
  DaId grandchild = Sub(sub, {}, block_);
  DovId dov = MintDov(sub, 10);
  cm_.Evaluate(sub, dov).ok();
  cm_.SubDaReadyToCommit(sub).ok();
  EXPECT_TRUE(cm_.TerminateSubDa(top, sub).IsProtocolViolation());
  // Terminate the grandchild (cancellation) first.
  ASSERT_TRUE(cm_.TerminateSubDa(sub, grandchild).ok());
  EXPECT_TRUE(cm_.TerminateSubDa(top, sub).ok());
}

TEST_F(CmTest, TerminateOnlyByParent) {
  DaId top = Top();
  DaId sub = Sub(top);
  DaId other_top = Top();
  EXPECT_TRUE(cm_.TerminateSubDa(other_top, sub).IsProtocolViolation());
}

TEST_F(CmTest, CompleteDesignReleasesAllLocks) {
  DaId top = Top();
  DovId dov = MintDov(top, 10);
  DaId sub = Sub(top);
  DovId sub_dov = MintDov(sub, 5);
  cm_.Evaluate(sub, sub_dov).ok();
  cm_.SubDaReadyToCommit(sub).ok();
  cm_.TerminateSubDa(top, sub).ok();
  ASSERT_TRUE(cm_.CompleteDesign(top).ok());
  EXPECT_FALSE(locks_.ScopeOwner(dov).valid());
  EXPECT_TRUE(cm_.CompleteDesign(top).IsProtocolViolation());  // terminated
}

TEST_F(CmTest, CompleteDesignRejectsSubDa) {
  DaId top = Top();
  DaId sub = Sub(top);
  EXPECT_TRUE(cm_.CompleteDesign(sub).IsProtocolViolation());
}

TEST_F(CmTest, ImpossibleSpecificationNotifiesSuper) {
  DaId top = Top();
  DaId sub = Sub(top);
  ASSERT_TRUE(cm_.SubDaImpossibleSpecification(sub, "area too small").ok());
  EXPECT_EQ(*cm_.StateOf(sub), DaState::kReadyForTermination);
  EXPECT_TRUE((*cm_.GetDa(sub))->impossible_reported);
  EXPECT_EQ(EventCount(top, "Sub_DA_Impossible_Specification"), 1);
}

// --- Specification changes ----------------------------------------------------

TEST_F(CmTest, ModifySubDaSpecOnlyByParentAndRestartsSub) {
  DesignSpecification spec;
  spec.Add(Feature::AtMost("area_limit", "area", 10));
  DaId top = Top();
  DaId sub = Sub(top, spec);
  DaId stranger = Top();

  DesignSpecification relaxed;
  relaxed.Add(Feature::AtMost("area_limit", "area", 100));
  EXPECT_TRUE(cm_.ModifySubDaSpecification(stranger, sub, relaxed)
                  .IsProtocolViolation());
  ASSERT_TRUE(cm_.ModifySubDaSpecification(top, sub, relaxed).ok());
  EXPECT_EQ(EventCount(sub, "Modify_Sub_DA_Specification"), 1);
  EXPECT_DOUBLE_EQ((*cm_.GetDa(sub))->spec.Find("area_limit")->max(), 100);
  // Finality is relative to the spec: the final list was reset.
  EXPECT_TRUE((*cm_.GetDa(sub))->final_dovs.empty());
}

TEST_F(CmTest, ModifySpecReactivatesReadyForTermination) {
  DaId top = Top();
  DaId sub = Sub(top);
  cm_.SubDaImpossibleSpecification(sub, "too hard").ok();
  EXPECT_EQ(*cm_.StateOf(sub), DaState::kReadyForTermination);
  cm_.ModifySubDaSpecification(top, sub, {}).ok();
  EXPECT_EQ(*cm_.StateOf(sub), DaState::kActive);
  EXPECT_FALSE((*cm_.GetDa(sub))->impossible_reported);
}

TEST_F(CmTest, RefineOwnSpecificationEnforcesRefinement) {
  DesignSpecification spec;
  spec.Add(Feature::AtMost("area_limit", "area", 100));
  DaId top = Top(spec);

  DesignSpecification narrowed;
  narrowed.Add(Feature::AtMost("area_limit", "area", 50));
  EXPECT_TRUE(cm_.RefineOwnSpecification(top, narrowed).ok());

  DesignSpecification widened;
  widened.Add(Feature::AtMost("area_limit", "area", 200));
  EXPECT_TRUE(
      cm_.RefineOwnSpecification(top, widened).IsProtocolViolation());
}

// --- Usage: Require / Propagate / Withdraw / Invalidate ------------------------

class UsageTest : public CmTest {
 protected:
  UsageTest() {
    DesignSpecification spec;
    spec.Add(Feature::AtMost("area_limit", "area", 100));
    top_ = Top();
    supporter_ = Sub(top_, spec);
    requirer_ = Sub(top_);
  }
  DaId top_;
  DaId supporter_;
  DaId requirer_;
};

TEST_F(UsageTest, RequireEstablishesRelationshipAndNotifies) {
  ASSERT_TRUE(cm_.Require(requirer_, supporter_, {"area_limit"}).ok());
  auto rels = cm_.RelationshipsOf(requirer_);
  bool has_usage = false;
  for (const auto& rel : rels) {
    if (rel.kind == RelKind::kUsage) has_usage = true;
  }
  EXPECT_TRUE(has_usage);
  EXPECT_EQ(EventCount(supporter_, "Require"), 1);
}

TEST_F(UsageTest, RequireRejectsUnknownFeature) {
  EXPECT_TRUE(cm_.Require(requirer_, supporter_, {"no_such_feature"})
                  .IsProtocolViolation());
}

TEST_F(UsageTest, PropagateDeliversQualifyingDovOnly) {
  cm_.Require(requirer_, supporter_, {"area_limit"}).ok();
  DovId good = MintDov(supporter_, 50);
  DovId bad = MintDov(supporter_, 500);

  ASSERT_TRUE(cm_.Propagate(supporter_, good).ok());
  ASSERT_TRUE(cm_.Propagate(supporter_, bad).ok());
  EXPECT_TRUE(cm_.InScope(requirer_, good));
  EXPECT_FALSE(cm_.InScope(requirer_, bad));  // quality not met
  EXPECT_EQ(EventCount(requirer_, "Propagate"), 1);
  EXPECT_TRUE((*repo_.Get(good)).propagated);
}

TEST_F(UsageTest, RequireServesAlreadyPropagatedDov) {
  DovId dov = MintDov(supporter_, 50);
  cm_.Propagate(supporter_, dov).ok();  // no requirer yet
  ASSERT_TRUE(cm_.Require(requirer_, supporter_, {"area_limit"}).ok());
  EXPECT_TRUE(cm_.InScope(requirer_, dov));
  EXPECT_EQ(EventCount(requirer_, "Propagate"), 1);
}

TEST_F(UsageTest, PropagateChecksOwnership) {
  DovId foreign = MintDov(requirer_, 10);
  EXPECT_TRUE(cm_.Propagate(supporter_, foreign).IsProtocolViolation());
}

TEST_F(UsageTest, NoExchangeWithoutUsageRelationship) {
  DovId dov = MintDov(supporter_, 50);
  cm_.Propagate(supporter_, dov).ok();
  // No Require from requirer_: not visible.
  EXPECT_FALSE(cm_.InScope(requirer_, dov));
}

TEST_F(UsageTest, WithdrawalRevokesAndNotifies) {
  cm_.Require(requirer_, supporter_, {"area_limit"}).ok();
  DovId dov = MintDov(supporter_, 50);
  cm_.Propagate(supporter_, dov).ok();
  ASSERT_TRUE(cm_.WithdrawPropagation(supporter_, dov).ok());
  EXPECT_FALSE(cm_.InScope(requirer_, dov));
  EXPECT_FALSE((*repo_.Get(dov)).propagated);
  EXPECT_EQ(EventCount(requirer_, "Withdrawal"), 1);
  // Withdrawing again is a precondition failure.
  EXPECT_TRUE(
      cm_.WithdrawPropagation(supporter_, dov).IsFailedPrecondition());
}

TEST_F(UsageTest, InvalidateReplacesWithQualifyingDov) {
  cm_.Require(requirer_, supporter_, {"area_limit"}).ok();
  DovId old_dov = MintDov(supporter_, 50);
  cm_.Propagate(supporter_, old_dov).ok();
  DovId replacement = MintDov(supporter_, 40);
  ASSERT_TRUE(
      cm_.InvalidateAndReplace(supporter_, old_dov, replacement).ok());
  EXPECT_TRUE((*repo_.Get(old_dov)).invalidated);
  EXPECT_FALSE(cm_.InScope(requirer_, old_dov));
  EXPECT_TRUE(cm_.InScope(requirer_, replacement));
  EXPECT_EQ(EventCount(requirer_, "Invalidation"), 1);
  // Invalidated DOVs cannot be propagated again.
  EXPECT_TRUE(cm_.Propagate(supporter_, old_dov).IsProtocolViolation());
}

TEST_F(UsageTest, InvalidateRejectsUnqualifiedReplacement) {
  cm_.Require(requirer_, supporter_, {"area_limit"}).ok();
  DovId old_dov = MintDov(supporter_, 50);
  cm_.Propagate(supporter_, old_dov).ok();
  DovId too_big = MintDov(supporter_, 900);
  EXPECT_TRUE(cm_.InvalidateAndReplace(supporter_, old_dov, too_big)
                  .IsProtocolViolation());
}

TEST_F(UsageTest, CancellationWithdrawsPropagatedDovs) {
  cm_.Require(requirer_, supporter_, {"area_limit"}).ok();
  DovId dov = MintDov(supporter_, 50);
  cm_.Propagate(supporter_, dov).ok();
  // Terminate without final DOVs = cancellation.
  ASSERT_TRUE(cm_.TerminateSubDa(top_, supporter_).ok());
  EXPECT_FALSE(cm_.InScope(requirer_, dov));
  EXPECT_EQ(EventCount(requirer_, "Withdrawal"), 1);
}

// --- Negotiation ---------------------------------------------------------------

class NegotiationTest : public CmTest {
 protected:
  NegotiationTest() {
    DesignSpecification spec_a;
    spec_a.Add(Feature::AtMost("area_limit", "area", 100));
    DesignSpecification spec_b;
    spec_b.Add(Feature::AtMost("area_limit", "area", 100));
    top_ = Top();
    a_ = Sub(top_, spec_a);
    b_ = Sub(top_, spec_b);
  }

  Proposal MoveBorder(double a_area, double b_area) {
    Proposal p;
    p.for_from = {Feature::AtMost("area_limit", "area", a_area)};
    p.for_to = {Feature::AtMost("area_limit", "area", b_area)};
    return p;
  }

  DaId top_;
  DaId a_;
  DaId b_;
};

TEST_F(NegotiationTest, ExplicitRelationshipOnlyBetweenSiblings) {
  EXPECT_TRUE(cm_.CreateNegotiationRelationship(top_, a_, b_, {"area"}).ok());
  DaId other_top = Top();
  DaId outsider = Sub(other_top);
  EXPECT_TRUE(cm_.CreateNegotiationRelationship(top_, a_, outsider, {"area"})
                  .status()
                  .IsProtocolViolation());
  // Duplicates rejected.
  EXPECT_TRUE(cm_.CreateNegotiationRelationship(top_, a_, b_, {"area"})
                  .status()
                  .IsProtocolViolation());
}

TEST_F(NegotiationTest, ProposeMovesBothToNegotiating) {
  ASSERT_TRUE(cm_.Propose(a_, b_, MoveBorder(120, 80)).ok());
  EXPECT_EQ(*cm_.StateOf(a_), DaState::kNegotiating);
  EXPECT_EQ(*cm_.StateOf(b_), DaState::kNegotiating);
  EXPECT_EQ(EventCount(b_, "Propose"), 1);
  EXPECT_TRUE(cm_.PendingProposalFor(b_).has_value());
}

TEST_F(NegotiationTest, ProposeRejectsNonSiblings) {
  DaId other_top = Top();
  DaId outsider = Sub(other_top);
  EXPECT_TRUE(
      cm_.Propose(a_, outsider, MoveBorder(1, 1)).IsProtocolViolation());
}

TEST_F(NegotiationTest, AgreeAppliesChangesToBothSpecs) {
  cm_.Propose(a_, b_, MoveBorder(120, 80)).ok();
  ASSERT_TRUE(cm_.Agree(b_).ok());
  EXPECT_EQ(*cm_.StateOf(a_), DaState::kActive);
  EXPECT_EQ(*cm_.StateOf(b_), DaState::kActive);
  EXPECT_DOUBLE_EQ((*cm_.GetDa(a_))->spec.Find("area_limit")->max(), 120);
  EXPECT_DOUBLE_EQ((*cm_.GetDa(b_))->spec.Find("area_limit")->max(), 80);
  EXPECT_EQ(EventCount(a_, "Agree"), 1);
  EXPECT_FALSE(cm_.PendingProposalFor(b_).has_value());
}

TEST_F(NegotiationTest, DisagreeKeepsSpecs) {
  cm_.Propose(a_, b_, MoveBorder(120, 80)).ok();
  ASSERT_TRUE(cm_.Disagree(b_).ok());
  EXPECT_DOUBLE_EQ((*cm_.GetDa(a_))->spec.Find("area_limit")->max(), 100);
  EXPECT_DOUBLE_EQ((*cm_.GetDa(b_))->spec.Find("area_limit")->max(), 100);
  EXPECT_EQ(*cm_.StateOf(a_), DaState::kActive);
  EXPECT_EQ(EventCount(a_, "Disagree"), 1);
}

TEST_F(NegotiationTest, OnlyReceiverAnswers) {
  cm_.Propose(a_, b_, MoveBorder(120, 80)).ok();
  EXPECT_TRUE(cm_.Agree(a_).IsProtocolViolation());  // a_ has no pending
  EXPECT_TRUE(cm_.Agree(b_).ok());
}

TEST_F(NegotiationTest, AgreeWithoutProposalRejected) {
  EXPECT_TRUE(cm_.Agree(b_).IsProtocolViolation());
  EXPECT_TRUE(cm_.Disagree(b_).IsProtocolViolation());
}

TEST_F(NegotiationTest, SecondProposalToSamePartyRejected) {
  cm_.Propose(a_, b_, MoveBorder(120, 80)).ok();
  EXPECT_TRUE(cm_.Propose(a_, b_, MoveBorder(130, 70)).IsProtocolViolation());
}

TEST_F(NegotiationTest, ConflictEscalatesToSuper) {
  cm_.Propose(a_, b_, MoveBorder(120, 80)).ok();
  ASSERT_TRUE(cm_.SubDasSpecificationConflict(a_, b_).ok());
  EXPECT_EQ(*cm_.StateOf(a_), DaState::kActive);
  EXPECT_EQ(*cm_.StateOf(b_), DaState::kActive);
  EXPECT_EQ(EventCount(top_, "Sub_DAs_Specification_Conflict"), 1);
  EXPECT_FALSE(cm_.PendingProposalFor(b_).has_value());
}

TEST_F(NegotiationTest, ConflictRequiresNegotiationRelationship) {
  EXPECT_TRUE(cm_.SubDasSpecificationConflict(a_, b_).IsProtocolViolation());
}

// --- Server crash recovery ------------------------------------------------------

TEST_F(CmTest, CmRecoversHierarchyFromRepository) {
  DesignSpecification spec;
  spec.Add(Feature::AtMost("area_limit", "area", 100));
  DaId top = Top(spec);
  DaId sub = Sub(top, spec);
  DovId dov = MintDov(sub, 50);
  cm_.Evaluate(sub, dov).ok();
  cm_.SubDaReadyToCommit(sub).ok();
  cm_.Require(top, sub, {"area_limit"}).ok();

  // Server crash: CM + lock tables volatile; repository recovers from
  // its WAL, CM from the meta store.
  cm_.Crash();
  locks_.ReleaseAll();
  repo_.Crash();
  ASSERT_TRUE(repo_.Recover().ok());
  ASSERT_TRUE(cm_.Recover().ok());

  EXPECT_EQ(*cm_.StateOf(top), DaState::kActive);
  EXPECT_EQ(*cm_.StateOf(sub), DaState::kReadyForTermination);
  EXPECT_EQ((*cm_.GetDa(sub))->final_dovs, std::vector<DovId>{dov});
  EXPECT_DOUBLE_EQ((*cm_.GetDa(sub))->spec.Find("area_limit")->max(), 100);
  EXPECT_EQ(cm_.Children(top), std::vector<DaId>{sub});
  // Scope-locks rebuilt: sub owns its DOV, super can read the final.
  EXPECT_TRUE(cm_.InScope(sub, dov));
  EXPECT_TRUE(cm_.InScope(top, dov));
  // Usage relationship survived.
  bool has_usage = false;
  for (const auto& rel : cm_.RelationshipsOf(top)) {
    if (rel.kind == RelKind::kUsage) has_usage = true;
  }
  EXPECT_TRUE(has_usage);
  // New DAs get fresh ids.
  DaId next = *cm_.InitDesign(Desc(chip_));
  EXPECT_GT(next.value(), sub.value());
}

TEST_F(CmTest, PendingProposalSurvivesServerCrash) {
  DaId top = Top();
  DaId a = Sub(top);
  DaId b = Sub(top);
  Proposal p;
  p.for_to = {Feature::AtMost("x", "area", 5)};
  cm_.Propose(a, b, p).ok();

  cm_.Crash();
  repo_.Crash();
  repo_.Recover().ok();
  ASSERT_TRUE(cm_.Recover().ok());
  EXPECT_EQ(*cm_.StateOf(a), DaState::kNegotiating);
  ASSERT_TRUE(cm_.PendingProposalFor(b).has_value());
  EXPECT_TRUE(cm_.Agree(b).ok());
  EXPECT_DOUBLE_EQ((*cm_.GetDa(b))->spec.Find("x")->max(), 5);
}

// --- Fig. 7 state machine legality sweep ----------------------------------------

/// Which operations are legal in which source state (subset we can
/// drive generically).
struct TransitionCase {
  DaState from;
  DaOperation op;
  bool legal;
};

class StateMachineP : public ::testing::TestWithParam<TransitionCase> {};

TEST_P(StateMachineP, OperationLegality) {
  const TransitionCase& c = GetParam();
  SimClock clock;
  storage::Repository repo(&clock);
  auto* module = repo.schema().DefineType("module");
  module->AddAttr({"area", storage::AttrType::kDouble, false, {}, {}});
  auto* chip = repo.schema().DefineType("chip");
  chip->AddAttr({"area", storage::AttrType::kDouble, false, {}, {}});
  chip->AddPart({module->id(), 0, 100});
  txn::LockManager locks;
  CooperationManager cm(&repo, &locks, &clock);

  DaDescription top_desc;
  top_desc.dot = chip->id();
  top_desc.designer = DesignerId(1);
  top_desc.workstation = NodeId(1);
  DaId top = *cm.InitDesign(top_desc);
  cm.Start(top).ok();
  DaDescription sub_desc;
  sub_desc.dot = module->id();
  sub_desc.designer = DesignerId(2);
  sub_desc.workstation = NodeId(2);
  DaId sub = *cm.CreateSubDa(top, sub_desc);
  DaId sibling = *cm.CreateSubDa(top, sub_desc);
  cm.Start(sibling).ok();

  // Drive `sub` into the source state.
  switch (c.from) {
    case DaState::kGenerated:
      break;
    case DaState::kActive:
      cm.Start(sub).ok();
      break;
    case DaState::kNegotiating: {
      cm.Start(sub).ok();
      Proposal p;
      cm.Propose(sibling, sub, p).ok();
      break;
    }
    case DaState::kReadyForTermination:
      cm.Start(sub).ok();
      cm.SubDaImpossibleSpecification(sub, "x").ok();
      break;
    case DaState::kTerminated:
      cm.Start(sub).ok();
      cm.SubDaImpossibleSpecification(sub, "x").ok();
      cm.TerminateSubDa(top, sub).ok();
      break;
  }
  ASSERT_EQ(*cm.StateOf(sub), c.from);

  Status st;
  switch (c.op) {
    case DaOperation::kStart:
      st = cm.Start(sub);
      break;
    case DaOperation::kCreateSubDa:
      st = cm.CreateSubDa(sub, sub_desc).status();
      break;
    case DaOperation::kSubDaImpossibleSpec:
      st = cm.SubDaImpossibleSpecification(sub, "r");
      break;
    case DaOperation::kPropose: {
      Proposal p;
      st = cm.Propose(sub, sibling, p);
      break;
    }
    case DaOperation::kAgree:
      st = cm.Agree(sub);
      break;
    case DaOperation::kModifySubDaSpec:
      st = cm.ModifySubDaSpecification(top, sub, {});
      break;
    default:
      GTEST_SKIP() << "operation not driven generically";
  }
  EXPECT_EQ(st.ok(), c.legal) << st.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Fig7, StateMachineP,
    ::testing::Values(
        // Start: only from generated.
        TransitionCase{DaState::kGenerated, DaOperation::kStart, true},
        TransitionCase{DaState::kActive, DaOperation::kStart, false},
        TransitionCase{DaState::kNegotiating, DaOperation::kStart, false},
        TransitionCase{DaState::kTerminated, DaOperation::kStart, false},
        // Create_Sub_DA: only while active.
        TransitionCase{DaState::kGenerated, DaOperation::kCreateSubDa, false},
        TransitionCase{DaState::kActive, DaOperation::kCreateSubDa, true},
        TransitionCase{DaState::kReadyForTermination,
                       DaOperation::kCreateSubDa, false},
        TransitionCase{DaState::kTerminated, DaOperation::kCreateSubDa,
                       false},
        // Impossible spec: only while active.
        TransitionCase{DaState::kActive, DaOperation::kSubDaImpossibleSpec,
                       true},
        TransitionCase{DaState::kGenerated, DaOperation::kSubDaImpossibleSpec,
                       false},
        TransitionCase{DaState::kReadyForTermination,
                       DaOperation::kSubDaImpossibleSpec, false},
        // Propose: active (or negotiating) proposer.
        TransitionCase{DaState::kActive, DaOperation::kPropose, true},
        TransitionCase{DaState::kGenerated, DaOperation::kPropose, false},
        TransitionCase{DaState::kReadyForTermination, DaOperation::kPropose,
                       false},
        TransitionCase{DaState::kTerminated, DaOperation::kPropose, false},
        // Agree: needs negotiating + pending proposal.
        TransitionCase{DaState::kNegotiating, DaOperation::kAgree, true},
        TransitionCase{DaState::kActive, DaOperation::kAgree, false},
        // Modify spec: any non-terminated state.
        TransitionCase{DaState::kActive, DaOperation::kModifySubDaSpec, true},
        TransitionCase{DaState::kGenerated, DaOperation::kModifySubDaSpec,
                       true},
        TransitionCase{DaState::kReadyForTermination,
                       DaOperation::kModifySubDaSpec, true},
        TransitionCase{DaState::kTerminated, DaOperation::kModifySubDaSpec,
                       false}));

}  // namespace
}  // namespace concord::cooperation
