#include "sim/scale_harness.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/ids.h"
#include "tests/seed.h"

namespace concord::sim {
namespace {

using test::ScopedSeedReporter;
using test::TestSeed;

/// Small plane for the checker self-tests: big enough to have real
/// chains and propagations, small enough to generate in milliseconds.
ScaleConfig SmallConfig() {
  ScaleConfig config;
  config.seed = TestSeed(42);
  config.server_nodes = 2;
  config.partitions = 1;
  config.workstations = 2;
  config.das = 4;
  config.dovs = 400;
  config.chain_depth = 8;
  config.propagated_per_da = 4;
  config.ops_per_workstation = 0;
  return config;
}

/// First DA (with its shard) that has at least one committed DOV.
struct DaOnShard {
  DaId da;
  size_t shard = 0;
  std::vector<DovId> dovs;
};

DaOnShard FindSeededDa(ScalePlane* plane) {
  for (DaId da : plane->cm().AllDas()) {
    for (size_t s = 0; s < plane->node_count(); ++s) {
      auto dovs = plane->shard(s).repo->DovsOf(da);
      if (!dovs.empty()) return {da, s, std::move(dovs)};
    }
  }
  ADD_FAILURE() << "generator produced no DOVs";
  return {};
}

/// Overwrites one cooperation flag directly in the repository — the
/// "corrupted server" the resurrection check must catch.
void FlipFlags(storage::Repository* repo, DovId dov, bool propagated,
               bool invalidated) {
  auto record = repo->Get(dov);
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  storage::DovRecord copy = *record;
  copy.propagated = propagated;
  copy.invalidated = invalidated;
  TxnId txn = repo->Begin();
  ASSERT_TRUE(repo->Put(txn, std::move(copy)).ok());
  ASSERT_TRUE(repo->Commit(txn).ok());
}

void ExpectOnly(const InvariantChecker& checker, ViolationClass expected,
                size_t count) {
  for (size_t c = 0; c < 6; ++c) {
    ViolationClass klass = static_cast<ViolationClass>(c);
    size_t want = klass == expected ? count : 0;
    EXPECT_EQ(checker.violation_count(klass), want)
        << "class " << ViolationClassName(klass);
  }
}

// --- Planted-violation self-tests: a checker that cannot catch a
// planted bug gates nothing.

TEST(ScaleCheckerSelfTest, PlantedLostCommitMissingDov) {
  ScaleHarness harness(SmallConfig());
  harness.Generate();
  InvariantChecker& checker = harness.checker();

  InvariantChecker::AckedCommit acked;
  acked.ws = 0;
  acked.dop = DopId(987654);
  acked.dov = DovId(999999);  // never committed anywhere
  acked.value = 7;
  acked.da = DaId(2);
  acked.participants = {0};
  checker.RecordAckedCommit(acked);

  checker.VerifyAgainst(&harness.plane(), /*only_up_nodes=*/false);
  ExpectOnly(checker, ViolationClass::kLostCommit, 1);
}

TEST(ScaleCheckerSelfTest, PlantedLostCommitPayloadMismatch) {
  ScaleHarness harness(SmallConfig());
  harness.Generate();
  DaOnShard seeded = FindSeededDa(&harness.plane());
  ASSERT_FALSE(seeded.dovs.empty());

  InvariantChecker::AckedCommit acked;
  acked.ws = 0;
  acked.dop = DopId(987654);
  acked.dov = seeded.dovs.front();
  acked.value = -1;  // generator only writes non-negative values
  acked.da = seeded.da;
  acked.participants = {};  // no participants: isolate the payload check
  harness.checker().RecordAckedCommit(acked);

  harness.checker().VerifyAgainst(&harness.plane(), false);
  ExpectOnly(harness.checker(), ViolationClass::kLostCommit, 1);
}

TEST(ScaleCheckerSelfTest, PlantedResurrectedWithdrawnVersion) {
  ScaleHarness harness(SmallConfig());
  harness.Generate();
  DaOnShard seeded = FindSeededDa(&harness.plane());
  ASSERT_FALSE(seeded.dovs.empty());
  DovId dov = seeded.dovs.front();
  auto& cm = harness.plane().cm();
  // Propagate may already have happened during Generate; make sure.
  cm.Propagate(seeded.da, dov).ok();
  ASSERT_TRUE(cm.WithdrawPropagation(seeded.da, dov).ok());
  harness.checker().RecordRetired(dov, /*invalidated=*/false,
                                  /*armed=*/false);

  // Resurrect it behind the CM's back: flip `propagated` back on.
  FlipFlags(harness.plane().shard(seeded.shard).repo.get(), dov,
            /*propagated=*/true, /*invalidated=*/false);

  harness.checker().VerifyAgainst(&harness.plane(), false);
  ExpectOnly(harness.checker(), ViolationClass::kResurrectedVersion, 1);
}

TEST(ScaleCheckerSelfTest, PlantedResurrectedInvalidatedVersion) {
  ScaleHarness harness(SmallConfig());
  harness.Generate();
  DaOnShard seeded = FindSeededDa(&harness.plane());
  ASSERT_GE(seeded.dovs.size(), 2u);
  DovId dov = seeded.dovs[0];
  DovId replacement = seeded.dovs[1];
  auto& cm = harness.plane().cm();
  cm.Propagate(seeded.da, dov).ok();
  ASSERT_TRUE(cm.InvalidateAndReplace(seeded.da, dov, replacement).ok());
  harness.checker().RecordRetired(dov, /*invalidated=*/true,
                                  /*armed=*/false);

  FlipFlags(harness.plane().shard(seeded.shard).repo.get(), dov,
            /*propagated=*/false, /*invalidated=*/false);

  harness.checker().VerifyAgainst(&harness.plane(), false);
  ExpectOnly(harness.checker(), ViolationClass::kResurrectedVersion, 1);
}

TEST(ScaleCheckerSelfTest, PlantedHalfAppliedCommit) {
  ScaleHarness harness(SmallConfig());
  harness.Generate();
  DaOnShard seeded = FindSeededDa(&harness.plane());
  ASSERT_FALSE(seeded.dovs.empty());
  DovId dov = seeded.dovs.front();
  auto& plane = harness.plane();

  // Begin a DOP (registering it on the DA's home shard) and then claim
  // its commit was acked without ever finishing it: the participant
  // still carries the registration — a half-applied decision.
  auto value = plane.shard(seeded.shard).repo->Get(dov);
  ASSERT_TRUE(value.ok());
  auto attr = value->data.GetAttr("value");
  ASSERT_TRUE(attr.ok());
  auto dop = plane.workstation(0).client->BeginDop(seeded.da);
  ASSERT_TRUE(dop.ok()) << dop.status().ToString();

  InvariantChecker::AckedCommit acked;
  acked.ws = 0;
  acked.dop = *dop;
  acked.dov = dov;
  acked.value = attr->as_int();
  acked.da = seeded.da;
  size_t home = DovShardClamped(dov, plane.node_count());
  acked.participants = {home};
  harness.checker().RecordAckedCommit(acked);

  harness.checker().VerifyAgainst(&plane, false);
  ExpectOnly(harness.checker(), ViolationClass::kAtomicityViolation, 1);
}

TEST(ScaleCheckerSelfTest, PlantedCacheCoherenceViolation) {
  InvariantChecker checker;
  DovId dov(12345);
  checker.RecordRetired(dov, /*invalidated=*/true, /*armed=*/true);
  checker.NoteCheckoutObservation(/*ws=*/0, dov, /*from_cache=*/true,
                                  checker.CurrentSeq());
  ExpectOnly(checker, ViolationClass::kCacheCoherence, 1);
}

TEST(ScaleCheckerSelfTest, CoherenceExcludesInFlightRace) {
  InvariantChecker checker;
  DovId dov(12345);
  uint64_t seq_before = checker.CurrentSeq();
  checker.RecordRetired(dov, true, true);
  // The checkout op started before the retirement: a legal race.
  checker.NoteCheckoutObservation(0, dov, true, seq_before);
  ExpectOnly(checker, ViolationClass::kCacheCoherence, 0);
}

TEST(ScaleCheckerSelfTest, CoherenceExcludesPostCrashRepopulation) {
  InvariantChecker checker;
  DovId dov(12345);
  checker.RecordRetired(dov, true, true);
  // The workstation crashed after the retirement: its cache memory is
  // gone, and a server-side checkout may legitimately repopulate it.
  checker.NoteWorkstationCrash(3);
  checker.NoteCheckoutObservation(3, dov, true, checker.CurrentSeq());
  ExpectOnly(checker, ViolationClass::kCacheCoherence, 0);
}

TEST(ScaleCheckerSelfTest, CoherenceIgnoresUnarmedRetirement) {
  InvariantChecker checker;
  DovId dov(12345);
  checker.RecordRetired(dov, true, /*armed=*/false);
  checker.NoteCheckoutObservation(0, dov, true, checker.CurrentSeq());
  ExpectOnly(checker, ViolationClass::kCacheCoherence, 0);
}

TEST(ScaleCheckerSelfTest, PlantedDuplicateDovId) {
  InvariantChecker checker;
  InvariantChecker::AckedCommit acked;
  acked.ws = 0;
  acked.dop = DopId(1);
  acked.dov = DovId(777);
  acked.value = 1;
  acked.da = DaId(1);
  checker.RecordAckedCommit(acked);
  acked.dop = DopId(2);  // different DOP, same DOV id: reissued id
  checker.RecordAckedCommit(acked);
  ExpectOnly(checker, ViolationClass::kDuplicateId, 1);
}

TEST(ScaleCheckerSelfTest, PlantedWalBoundViolation) {
  InvariantChecker checker;
  checker.NoteWalSize(/*shard=*/0, /*records_after_checkpoint=*/100,
                      /*bound=*/100);
  ExpectOnly(checker, ViolationClass::kWalUnbounded, 0);
  checker.NoteWalSize(0, 101, 100);
  ExpectOnly(checker, ViolationClass::kWalUnbounded, 1);
}

// --- MigrateDa under a checkout/checkin storm (previously only
// exercised quiescently). With loss at zero every server-side commit
// acks, so DOV accounting must be exact: no lost and no duplicated
// server effects across the migration.

TEST(ScaleMigrationTest, MigrateHotDaUnderCheckoutStorm) {
  uint64_t seed = TestSeed(42);
  ScopedSeedReporter reporter(seed);
  ScaleConfig config = SmallConfig();
  config.seed = seed;
  config.workstations = 4;
  config.loss_probability = 0.0;
  ScaleHarness harness(config);
  harness.Generate();
  ScalePlane& plane = harness.plane();

  // Pick a DA homed on shard 0 as the hot target.
  DaId hot;
  for (DaId da : plane.cm().AllDas()) {
    if (!plane.shard(0).repo->DovsOf(da).empty()) {
      hot = da;
      break;
    }
  }
  ASSERT_TRUE(hot.valid());
  std::vector<DovId> inputs = plane.shard(0).repo->DovsOf(hot);
  const size_t seeded = inputs.size();

  std::atomic<size_t> acked{0};
  std::atomic<bool> migrated{false};   // storm-unblock signal
  std::atomic<bool> migrate_ok{false};  // MigrateDa actually succeeded
  constexpr size_t kThreads = 4;
  // Each thread keeps committing until it has run a tail of ops AFTER
  // the migration landed, so DOPs begun against the old home are
  // guaranteed to commit across the placement change (the kWrongShard
  // redirect + placement-refresh retry path).
  constexpr size_t kOpsAfterMigration = 20;
  constexpr size_t kOpsCap = 20000;  // bail-out if migration never lands
  std::vector<std::thread> storm;
  for (size_t t = 0; t < kThreads; ++t) {
    storm.emplace_back([&, t] {
      txn::ClientTm& client = *plane.workstation(t).client;
      size_t after_migration = 0;
      for (size_t i = 0;
           after_migration < kOpsAfterMigration && i < kOpsCap; ++i) {
        if (migrated.load(std::memory_order_acquire)) ++after_migration;
        auto dop = client.BeginDop(hot);
        if (!dop.ok()) continue;
        DovId input = inputs[(t * 131 + i) % inputs.size()];
        if (!client.Checkout(*dop, input, false).ok()) {
          client.AbortDop(*dop).ok();
          continue;
        }
        storage::DesignObject object(plane.cell_dot());
        object.SetAttr("value", static_cast<int64_t>(t * 100000 + i));
        if (client.CheckinCommit(*dop, std::move(object), {input}).ok()) {
          acked.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Migrate mid-storm, once some traffic has already committed.
  std::thread migrator([&] {
    while (acked.load(std::memory_order_relaxed) < kThreads * 2) {
      std::this_thread::yield();
    }
    for (int attempt = 0; attempt < 200; ++attempt) {
      if (plane.cm().MigrateDa(hot, plane.shard(1).node).ok()) {
        migrate_ok.store(true, std::memory_order_release);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    migrated.store(true, std::memory_order_release);  // unblock the storm
  });
  for (std::thread& thread : storm) thread.join();
  migrator.join();
  ASSERT_TRUE(migrate_ok.load()) << "MigrateDa never succeeded mid-storm";
  ASSERT_GT(acked.load(), 0u);

  // Placement converged: the authority and a fresh client both see the
  // new home, and post-migration traffic commits there.
  EXPECT_EQ(plane.placement().HomeOf(hot), plane.shard(1).node);

  uint64_t refreshes = 0;
  for (size_t w = 0; w < plane.workstation_count(); ++w) {
    refreshes += plane.workstation(w).client->stats().placement_refreshes;
  }
  EXPECT_GT(refreshes, 0u) << "no client ever refreshed placement";

  // Exact effect accounting: with zero loss every server commit was
  // acked, so the union of both shards must hold exactly the seeded
  // versions plus one DOV per acked commit — nothing lost, nothing
  // applied twice.
  size_t total = plane.shard(0).repo->DovsOf(hot).size() +
                 plane.shard(1).repo->DovsOf(hot).size();
  EXPECT_EQ(total, seeded + acked.load());

  // And the plane still takes traffic for the migrated DA.
  txn::ClientTm& client = *plane.workstation(0).client;
  auto dop = client.BeginDop(hot);
  ASSERT_TRUE(dop.ok()) << dop.status().ToString();
  ASSERT_TRUE(client.Checkout(*dop, inputs.front(), false).ok());
  storage::DesignObject object(plane.cell_dot());
  object.SetAttr("value", static_cast<int64_t>(4242));
  auto dov = client.CheckinCommit(*dop, std::move(object), {inputs.front()});
  ASSERT_TRUE(dov.ok()) << dov.status().ToString();
  EXPECT_EQ(DovShardClamped(*dov, plane.node_count()), 1u);
}

// --- Checkpoint-during-chaos regression: periodic Checkpoint() sweeps
// run while traffic and crashes are in flight, truncate the WAL
// (bounded records survive a checkpoint), and never checkpoint a
// crashed node's empty volatile image over its log.

TEST(ScaleChaosTest, CheckpointDuringChaosKeepsWalBounded) {
  uint64_t seed = TestSeed(42);
  ScopedSeedReporter reporter(seed);
  ScaleConfig config;
  config.seed = seed;
  config.server_nodes = 3;
  config.partitions = 1;
  config.workstations = 4;
  config.das = 8;
  config.dovs = 4000;
  config.ops_per_workstation = 120;
  config.loss_probability = 0.03;
  config.crash_cycles = 2;
  config.workstation_crashes = 1;
  config.migrations = 0;
  config.checkpoints = 3;
  config.wal_bound = 20000;
  ScaleHarness harness(config);
  ScaleResult result = harness.Run();

  for (const Violation& violation : result.violations) {
    ADD_FAILURE() << ViolationClassName(violation.klass) << ": "
                  << violation.detail;
  }
  EXPECT_EQ(result.violations_total, 0u);
  EXPECT_GE(result.checkpoints_done, 3u);
  EXPECT_EQ(result.violations_by_class[static_cast<size_t>(
                ViolationClass::kWalUnbounded)],
            0u);
  EXPECT_LE(result.wal_records_after_last_checkpoint, config.wal_bound);
}

// --- The deterministic short chaos run the CI gate mirrors: ≥8
// designer threads, message loss, 3 rolling node crash/recover cycles,
// a workstation crash, a mid-traffic migration — zero violations.

TEST(ScaleChaosTest, ShortChaosRunHasZeroViolations) {
  uint64_t seed = TestSeed(42);
  ScopedSeedReporter reporter(seed);
  ScaleConfig config;
  config.seed = seed;
  config.server_nodes = 4;
  config.partitions = 2;
  config.workstations = 8;
  config.das = 16;
  config.dovs = 20000;
  config.ops_per_workstation = 250;
  config.loss_probability = 0.05;
  config.crash_cycles = 3;
  config.workstation_crashes = 2;
  config.migrations = 1;
  config.checkpoints = 2;
  ScaleHarness harness(config);
  ScaleResult result = harness.Run();

  for (const Violation& violation : result.violations) {
    ADD_FAILURE() << ViolationClassName(violation.klass) << ": "
                  << violation.detail;
  }
  EXPECT_EQ(result.violations_total, 0u);
  EXPECT_GT(result.acked_commits, 0u);
  EXPECT_GE(result.crash_cycles_done, 3u);
  EXPECT_GE(result.workstation_crashes_done, 1u);
  EXPECT_GE(result.migrations_done, 1u);
  EXPECT_GE(result.checkpoints_done, 2u);
  EXPECT_EQ(result.dovs_generated, config.dovs);
}

}  // namespace
}  // namespace concord::sim
