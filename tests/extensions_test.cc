// Tests for the paper's "detail" mechanisms beyond the core protocol:
// DOP-to-DOP context handover (Sect. 5, fn. 1) and the invalidation
// condition over the derivation graph (Sect. 5.4).

#include <gtest/gtest.h>

#include "cooperation/cooperation_manager.h"
#include "rpc/network.h"
#include "storage/repository.h"
#include "txn/client_tm.h"
#include "txn/local_server_service.h"
#include "txn/lock_manager.h"
#include "txn/server_tm.h"

namespace concord {
namespace {

// --- Context handover ---------------------------------------------------

class HandoverTest : public ::testing::Test {
 protected:
  HandoverTest() : network_(&clock_, 1), repo_(&clock_) {
    server_node_ = network_.AddNode("server");
    ws_ = network_.AddNode("ws1");
    auto* type = repo_.schema().DefineType("thing");
    type->AddAttr({"v", storage::AttrType::kInt, true, {}, {}});
    dot_ = type->id();
    server_ = std::make_unique<txn::ServerTm>(&repo_, &network_,
                                              server_node_, &scope_);
    service_ = std::make_unique<txn::LocalServerService>(server_.get(),
                                                         &network_, ws_);
    client_ = std::make_unique<txn::ClientTm>(service_.get(), &network_, ws_,
                                              &clock_);
  }

  storage::DesignObject MakeObj(int64_t v) {
    storage::DesignObject obj(dot_);
    obj.SetAttr("v", v);
    return obj;
  }

  SimClock clock_;
  rpc::Network network_;
  storage::Repository repo_;
  txn::PermissiveScopeAuthority scope_;
  NodeId server_node_;
  NodeId ws_;
  DotId dot_;
  std::unique_ptr<txn::ServerTm> server_;
  std::unique_ptr<txn::LocalServerService> service_;
  std::unique_ptr<txn::ClientTm> client_;
};

TEST_F(HandoverTest, SuccessorInheritsInputsAndWorkspace) {
  // Predecessor DOP: checks out a version, builds workspace state.
  auto pred = client_->BeginDop(DaId(1));
  auto out = client_->Checkin(*pred, MakeObj(1), {});
  ASSERT_TRUE(out.ok());
  // (simulate a loaded context: checkout own result + workspace)
  ASSERT_TRUE(client_->Checkout(*pred, *out).ok());
  client_->PutWorkspace(*pred, "scratch", MakeObj(7)).ok();
  ASSERT_TRUE(client_->CommitDop(*pred).ok());

  auto succ = client_->BeginDop(DaId(1));
  ASSERT_TRUE(client_->HandOverContext(*pred, *succ).ok());
  // Successor sees the predecessor's loaded input WITHOUT a checkout.
  uint64_t checkouts_before = server_->stats().checkouts;
  EXPECT_TRUE(client_->Input(*succ, *out).ok());
  EXPECT_EQ(server_->stats().checkouts, checkouts_before);
  EXPECT_EQ(client_->GetWorkspace(*succ, "scratch")->GetAttr("v")->as_int(),
            7);
  EXPECT_EQ(client_->stats().context_handovers, 1u);
}

TEST_F(HandoverTest, HandoverRequiresCommittedPredecessor) {
  auto pred = client_->BeginDop(DaId(1));
  auto succ = client_->BeginDop(DaId(1));
  EXPECT_TRUE(
      client_->HandOverContext(*pred, *succ).IsFailedPrecondition());
  client_->AbortDop(*pred).ok();
  EXPECT_TRUE(
      client_->HandOverContext(*pred, *succ).IsFailedPrecondition());
}

TEST_F(HandoverTest, HandoverRequiresActiveSuccessor) {
  auto pred = client_->BeginDop(DaId(1));
  client_->Checkin(*pred, MakeObj(1), {}).ok();
  client_->CommitDop(*pred).ok();
  auto succ = client_->BeginDop(DaId(1));
  client_->AbortDop(*succ).ok();
  EXPECT_FALSE(client_->HandOverContext(*pred, *succ).ok());
}

TEST_F(HandoverTest, HandedOverContextSurvivesCrash) {
  auto pred = client_->BeginDop(DaId(1));
  auto out = client_->Checkin(*pred, MakeObj(3), {});
  ASSERT_TRUE(client_->Checkout(*pred, *out).ok());
  client_->PutWorkspace(*pred, "w", MakeObj(9)).ok();
  ASSERT_TRUE(client_->CommitDop(*pred).ok());

  auto succ = client_->BeginDop(DaId(1));
  ASSERT_TRUE(client_->HandOverContext(*pred, *succ).ok());
  client_->Crash();
  ASSERT_TRUE(client_->Recover().ok());
  // Handover took a recovery point: the inherited context survived.
  EXPECT_EQ(client_->GetWorkspace(*succ, "w")->GetAttr("v")->as_int(), 9);
  EXPECT_TRUE(client_->Input(*succ, *out).ok());
}

TEST_F(HandoverTest, SuccessorWorkCounterIndependent) {
  auto pred = client_->BeginDop(DaId(1));
  client_->DoWork(*pred, 50).ok();
  client_->Checkin(*pred, MakeObj(1), {}).ok();
  client_->CommitDop(*pred).ok();

  auto succ = client_->BeginDop(DaId(1));
  client_->DoWork(*succ, 5).ok();
  ASSERT_TRUE(client_->HandOverContext(*pred, *succ).ok());
  // The successor's own work, not the predecessor's, is counted.
  EXPECT_EQ(*client_->WorkDone(*succ), 5u);
}

// --- Invalidation candidates -------------------------------------------

class InvalidationTest : public ::testing::Test {
 protected:
  InvalidationTest() : repo_(&clock_), cm_(&repo_, &locks_, &clock_) {
    auto* module = repo_.schema().DefineType("module");
    module->AddAttr({"area", storage::AttrType::kDouble, false, {}, {}});
    auto* chip = repo_.schema().DefineType("chip");
    chip->AddAttr({"area", storage::AttrType::kDouble, false, {}, {}});
    chip->AddPart({module->id(), 0, 100});
    chip_ = chip->id();
    module_ = module->id();
  }

  DaId MakeActiveDa(storage::DesignSpecification spec) {
    cooperation::DaDescription desc;
    desc.dot = chip_;
    desc.spec = std::move(spec);
    desc.designer = DesignerId(1);
    desc.workstation = NodeId(1);
    DaId da = *cm_.InitDesign(std::move(desc));
    cm_.Start(da).ok();
    return da;
  }

  DovId Mint(DaId da, double area, std::vector<DovId> preds = {}) {
    TxnId txn = repo_.Begin();
    storage::DovRecord record;
    record.id = repo_.NextDovId();
    record.owner_da = da;
    record.type = module_;
    record.data = storage::DesignObject(module_);
    record.data.SetAttr("area", area);
    record.predecessors = std::move(preds);
    repo_.Put(txn, record).ok();
    repo_.Commit(txn).ok();
    locks_.SetScopeOwner(record.id, da);
    cm_.NoteCheckin(da, record.id);
    return record.id;
  }

  SimClock clock_;
  storage::Repository repo_;
  txn::LockManager locks_;
  cooperation::CooperationManager cm_;
  DotId chip_;
  DotId module_;
};

TEST_F(InvalidationTest, NoCandidatesWithoutFinalDov) {
  storage::DesignSpecification spec;
  spec.Add(storage::Feature::AtMost("area_limit", "area", 100));
  DaId da = MakeActiveDa(spec);
  DovId dov = Mint(da, 500);  // preliminary
  cm_.Propagate(da, dov).ok();
  EXPECT_TRUE(cm_.InvalidationCandidates(da).empty());
}

TEST_F(InvalidationTest, DeadBranchBecomesCandidateOnceFinalExists) {
  storage::DesignSpecification spec;
  spec.Add(storage::Feature::AtMost("area_limit", "area", 100));
  DaId da = MakeActiveDa(spec);

  // Two branches from a common root; the dead one was pre-released.
  DovId root = Mint(da, 500);
  DovId dead = Mint(da, 400, {root});
  DovId alive = Mint(da, 200, {root});
  DovId final_dov = Mint(da, 50, {alive});
  ASSERT_TRUE(cm_.Propagate(da, dead).ok());
  ASSERT_TRUE(cm_.Propagate(da, alive).ok());

  EXPECT_TRUE(cm_.InvalidationCandidates(da).empty());  // no final yet
  ASSERT_TRUE(cm_.Evaluate(da, final_dov)->is_final());
  // `dead` does not feed the final; `alive` does; `root` does.
  EXPECT_EQ(cm_.InvalidationCandidates(da), std::vector<DovId>{dead});
}

TEST_F(InvalidationTest, CandidateClearedByInvalidateAndReplace) {
  storage::DesignSpecification spec;
  spec.Add(storage::Feature::AtMost("area_limit", "area", 100));
  DaId da = MakeActiveDa(spec);
  DaId requirer = MakeActiveDa({});
  // A usage relationship so invalidation has someone to notify.
  ASSERT_TRUE(cm_.Require(requirer, da, {"area_limit"}).ok());

  DovId root = Mint(da, 90);
  DovId dead = Mint(da, 80, {root});
  DovId alive = Mint(da, 60, {root});
  DovId final_dov = Mint(da, 50, {alive});
  cm_.Propagate(da, dead).ok();
  cm_.Evaluate(da, final_dov).ok();
  ASSERT_EQ(cm_.InvalidationCandidates(da), std::vector<DovId>{dead});

  // Replace the dead branch with the final version itself.
  ASSERT_TRUE(cm_.InvalidateAndReplace(da, dead, final_dov).ok());
  EXPECT_TRUE(cm_.InvalidationCandidates(da).empty());
  EXPECT_TRUE((*repo_.Get(dead)).invalidated);
  EXPECT_TRUE(cm_.InScope(requirer, final_dov));
}

TEST_F(InvalidationTest, PropagatedAncestorOfFinalIsNotACandidate) {
  DaId da = MakeActiveDa({});  // empty spec: everything is final
  DovId root = Mint(da, 10);
  DovId final_dov = Mint(da, 5, {root});
  cm_.Propagate(da, root).ok();
  cm_.Evaluate(da, final_dov).ok();
  EXPECT_TRUE(cm_.InvalidationCandidates(da).empty());
}

}  // namespace
}  // namespace concord
