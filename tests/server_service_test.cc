// The typed ServerService protocol: wire-codec round trips, batch
// envelope semantics, and — now that checkout/checkin/begin/commit/
// abort ride rpc::TransactionalRpc — message-loss regressions proving
// at-most-once server effects with correct retry accounting.

#include <gtest/gtest.h>

#include <memory>

#include "rpc/network.h"
#include "rpc/transactional_rpc.h"
#include "storage/repository.h"
#include "storage/wal_codec.h"
#include "txn/client_tm.h"
#include "txn/local_server_service.h"
#include "txn/remote_server_stub.h"
#include "txn/server_tm.h"

namespace concord::txn {
namespace {

// --- Wire codec -----------------------------------------------------------

TEST(ServerServiceCodecTest, BatchRequestRoundTrips) {
  storage::DesignObject object(DotId(7));
  object.SetAttr("value", static_cast<int64_t>(42));
  storage::DesignObject child(DotId(8));
  child.SetAttr("name", std::string("leaf"));
  object.AddChild(child);

  BatchRequest batch;
  batch.ops.emplace_back(PrepareRequest{TxnId(9)});
  batch.ops.emplace_back(BeginDopRequest{DopId(1), DaId(2)});
  batch.ops.emplace_back(CheckoutRequest{DopId(1), DovId(3), true});
  batch.ops.emplace_back(
      CheckinRequest{DopId(1), object, {DovId(3), DovId(4)}, 77});
  batch.ops.emplace_back(CommitDopRequest{DopId(1)});
  batch.ops.emplace_back(AbortDopRequest{DopId(5)});
  batch.ops.emplace_back(DaOfDopRequest{DopId(6)});
  batch.ops.emplace_back(DecideRequest{TxnId(9), false});

  auto decoded = DecodeBatchRequest(EncodeBatchRequest(batch));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->ops.size(), batch.ops.size());
  EXPECT_EQ(std::get<PrepareRequest>(decoded->ops[0]).txn, TxnId(9));
  EXPECT_EQ(std::get<BeginDopRequest>(decoded->ops[1]).da, DaId(2));
  const auto& checkout = std::get<CheckoutRequest>(decoded->ops[2]);
  EXPECT_EQ(checkout.dov, DovId(3));
  EXPECT_TRUE(checkout.take_derivation_lock);
  const auto& checkin = std::get<CheckinRequest>(decoded->ops[3]);
  EXPECT_EQ(checkin.predecessors.size(), 2u);
  EXPECT_EQ(checkin.created_at, 77);
  EXPECT_EQ(checkin.object.GetAttr("value")->as_int(), 42);
  ASSERT_EQ(checkin.object.children().size(), 1u);
  EXPECT_EQ(checkin.object.children()[0].GetAttr("name")->as_string(), "leaf");
  EXPECT_EQ(std::get<DaOfDopRequest>(decoded->ops[6]).dop, DopId(6));
  EXPECT_FALSE(std::get<DecideRequest>(decoded->ops[7]).commit);
}

TEST(ServerServiceCodecTest, BatchReplyRoundTripsTypedStatuses) {
  storage::DovRecord record;
  record.id = DovId(11);
  record.owner_da = DaId(3);
  record.data = storage::DesignObject(DotId(7));

  BatchReply reply;
  reply.ops.push_back({Status::OK(), PrepareReply{true}});
  reply.ops.push_back({Status::OK(), CheckoutReply{record}});
  reply.ops.push_back({Status::LockConflict("derivation-locked"), AckReply{}});
  reply.ops.push_back({Status::UnknownDop("wiped by crash"), AckReply{}});
  reply.ops.push_back({Status::OK(), CheckinReply{DovId(12)}});
  reply.ops.push_back({Status::OK(), DaOfDopReply{DaId(4)}});

  auto decoded = DecodeBatchReply(EncodeBatchReply(reply));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->ops.size(), 6u);
  EXPECT_TRUE(std::get<PrepareReply>(decoded->ops[0].body).vote);
  EXPECT_EQ(std::get<CheckoutReply>(decoded->ops[1].body).record.id,
            DovId(11));
  // The typed failure categories survive the wire — a lock conflict or
  // a crash-wiped registration stays distinguishable on the far side.
  EXPECT_TRUE(decoded->ops[2].status.IsLockConflict());
  EXPECT_EQ(decoded->ops[2].status.message(), "derivation-locked");
  EXPECT_TRUE(decoded->ops[3].status.IsUnknownDop());
  EXPECT_EQ(std::get<CheckinReply>(decoded->ops[4].body).dov, DovId(12));
  EXPECT_EQ(std::get<DaOfDopReply>(decoded->ops[5].body).da, DaId(4));
}

TEST(ServerServiceCodecTest, MalformedPayloadsRejected) {
  EXPECT_FALSE(DecodeBatchRequest("xy").ok());           // short header
  EXPECT_FALSE(DecodeBatchReply("\xff\xff\xff\xff").ok());  // absurd count
  std::string valid = EncodeBatchRequest(
      BatchRequest{{ServerRequest{CommitDopRequest{DopId(1)}}}});
  EXPECT_TRUE(DecodeBatchRequest(valid).ok());
  EXPECT_FALSE(DecodeBatchRequest(valid + "trailing").ok());
  valid.back() = '\x09';  // unknown request tag
  EXPECT_FALSE(DecodeBatchRequest(std::string_view(valid).substr(0, 4)).ok());
}

TEST(ServerServiceCodecTest, DesignObjectPayloadRoundTrips) {
  storage::DesignObject object(DotId(3));
  object.SetAttr("d", 2.5);
  object.SetAttr("flag", true);
  auto decoded = storage::DecodeDesignObject(storage::EncodeDesignObject(object));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->GetAttr("d")->as_double(), 2.5);
  EXPECT_TRUE(decoded->GetAttr("flag")->as_bool());
  EXPECT_FALSE(storage::DecodeDesignObject("bogus").ok());
}

// --- Full-stack fixture ---------------------------------------------------

class ServerServiceTest : public ::testing::Test {
 protected:
  ServerServiceTest() : network_(&clock_, 11), rpc_(&network_), repo_(&clock_) {
    server_node_ = network_.AddNode("server");
    ws_ = network_.AddNode("ws1");
    auto* type = repo_.schema().DefineType("thing");
    type->AddAttr({"value", storage::AttrType::kInt, true, 0.0, 1000.0});
    dot_ = type->id();
    server_ = std::make_unique<ServerTm>(&repo_, &network_, server_node_,
                                         &scope_);
    RegisterServerService(server_.get(), &rpc_);
    stub_ = std::make_unique<RemoteServerStub>(&rpc_, ws_, server_node_);
    client_ = std::make_unique<ClientTm>(stub_.get(), &network_, ws_, &clock_);
  }

  storage::DesignObject MakeObj(int64_t value) {
    storage::DesignObject obj(dot_);
    obj.SetAttr("value", value);
    return obj;
  }

  DovId Seed(DaId da, int64_t value) {
    TxnId txn = repo_.Begin();
    storage::DovRecord record;
    record.id = repo_.NextDovId();
    record.owner_da = da;
    record.type = dot_;
    record.data = MakeObj(value);
    repo_.Put(txn, record).ok();
    repo_.Commit(txn).ok();
    server_->locks().SetScopeOwner(record.id, da);
    return record.id;
  }

  SimClock clock_;
  rpc::Network network_;
  rpc::TransactionalRpc rpc_;
  storage::Repository repo_;
  PermissiveScopeAuthority scope_;
  NodeId server_node_;
  NodeId ws_;
  DotId dot_;
  std::unique_ptr<ServerTm> server_;
  std::unique_ptr<RemoteServerStub> stub_;
  std::unique_ptr<ClientTm> client_;
};

// --- Envelope semantics ---------------------------------------------------

TEST_F(ServerServiceTest, TypedWrappersHitTheServerTm) {
  DovId input = Seed(DaId(1), 5);
  ASSERT_TRUE(stub_->BeginDop(DopId(100), DaId(1)).ok());
  auto record = stub_->Checkout(DopId(100), input);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->data.GetAttr("value")->as_int(), 5);
  auto dov = stub_->Checkin(DopId(100), MakeObj(6), {input}, clock_.Now());
  ASSERT_TRUE(dov.ok());
  EXPECT_EQ(*stub_->DaOfDop(DopId(100)), DaId(1));
  auto vote = stub_->Prepare(TxnId(1));
  ASSERT_TRUE(vote.ok());
  EXPECT_TRUE(*vote);
  EXPECT_TRUE(stub_->CommitDop(DopId(100)).ok());
  EXPECT_EQ(server_->stats().checkins, 1u);
  // Every wrapper call was one countable RPC envelope.
  EXPECT_EQ(rpc_.stats().calls, 6u);
}

TEST_F(ServerServiceTest, BatchSkipsDataOpsAfterFailure) {
  ASSERT_TRUE(stub_->BeginDop(DopId(100), DaId(1)).ok());
  BatchRequest batch;
  batch.ops.emplace_back(PrepareRequest{TxnId(1)});
  // Violates the attribute bound -> checkin failure.
  batch.ops.emplace_back(CheckinRequest{DopId(100), MakeObj(5000), {}, 0});
  batch.ops.emplace_back(CommitDopRequest{DopId(100)});
  batch.ops.emplace_back(DecideRequest{TxnId(1), true});
  auto reply = stub_->Execute(batch);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(std::get<PrepareReply>(reply->ops[0].body).vote);
  EXPECT_TRUE(reply->ops[1].status.IsConstraintViolation());
  // The commit was skipped, not executed: the DOP is still registered.
  EXPECT_TRUE(reply->ops[2].status.IsAborted());
  EXPECT_TRUE(reply->ops[3].status.ok());  // control leg always answers
  EXPECT_EQ(server_->stats().dops_committed, 0u);
  EXPECT_TRUE(stub_->DaOfDop(DopId(100)).ok());
}

TEST_F(ServerServiceTest, ClientTmTrafficIsVisibleInRpcStats) {
  DovId input = Seed(DaId(1), 5);
  auto dop = client_->BeginDop(DaId(1));
  ASSERT_TRUE(dop.ok());
  ASSERT_TRUE(client_->Checkout(*dop, input).ok());
  auto out = client_->Checkin(*dop, MakeObj(6), {input});
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(client_->CommitDop(*dop).ok());
  // begin + checkout + checkin + commit = 4 envelopes, zero raw 2PC
  // side-channels: the protocol legs rode inside the envelopes.
  EXPECT_EQ(rpc_.stats().calls, 4u);
  EXPECT_EQ(client_->two_pc_stats().protocols_run, 4u);
  EXPECT_EQ(client_->two_pc_stats().committed, 4u);
}

TEST_F(ServerServiceTest, BatchedCheckinCommitSavesARoundTrip) {
  DovId input = Seed(DaId(1), 5);

  auto dop = client_->BeginDop(DaId(1));
  ASSERT_TRUE(client_->Checkout(*dop, input).ok());
  uint64_t calls_before = rpc_.stats().calls;
  auto out = client_->CheckinCommit(*dop, MakeObj(6), {input});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(rpc_.stats().calls, calls_before + 1);  // ONE envelope
  EXPECT_EQ(*client_->StateOf(*dop), DopState::kCommitted);
  EXPECT_EQ(client_->stats().batched_checkin_commits, 1u);

  client_->set_batching(false);
  auto dop2 = client_->BeginDop(DaId(1));
  calls_before = rpc_.stats().calls;
  auto out2 = client_->CheckinCommit(*dop2, MakeObj(7), {});
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(rpc_.stats().calls, calls_before + 2);  // checkin, then commit
  EXPECT_EQ(server_->stats().dops_committed, 2u);
}

TEST_F(ServerServiceTest, BatchedCheckinFailureLeavesDopActive) {
  auto dop = client_->BeginDop(DaId(1));
  auto out = client_->CheckinCommit(*dop, MakeObj(5000), {});  // bound violated
  EXPECT_TRUE(out.status().IsConstraintViolation());
  EXPECT_EQ(*client_->StateOf(*dop), DopState::kActive);
  EXPECT_EQ(server_->stats().dops_committed, 0u);
  // Fixed object commits fine afterwards.
  EXPECT_TRUE(client_->CheckinCommit(*dop, MakeObj(10), {}).ok());
  EXPECT_EQ(*client_->StateOf(*dop), DopState::kCommitted);
}

TEST_F(ServerServiceTest, OwnCheckinIsServedFromCache) {
  auto dop = client_->BeginDop(DaId(1));
  auto out = client_->CheckinCommit(*dop, MakeObj(6), {});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(client_->stats().checkin_cache_inserts, 1u);
  // Re-reading one's own checkin from a successor DOP is a cache hit:
  // no server checkout, no RPC.
  auto dop2 = client_->BeginDop(DaId(1));
  uint64_t calls_before = rpc_.stats().calls;
  ASSERT_TRUE(client_->Checkout(*dop2, *out).ok());
  EXPECT_EQ(rpc_.stats().calls, calls_before);
  EXPECT_EQ(server_->stats().checkouts, 0u);
  EXPECT_EQ(client_->stats().checkouts_from_cache, 1u);
  auto obj = client_->Input(*dop2, *out);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj->GetAttr("value")->as_int(), 6);
}

// --- Message loss ---------------------------------------------------------

TEST_F(ServerServiceTest, LossyLanMasksLossWithAtMostOnceEffects) {
  DovId input = Seed(DaId(1), 5);
  network_.set_loss_probability(0.3);

  constexpr int kCycles = 40;
  int completed = 0;
  for (int i = 0; i < kCycles; ++i) {
    auto dop = client_->BeginDop(DaId(1));
    if (!dop.ok()) continue;  // retries exhausted: rare but legal
    if (!client_->Checkout(*dop, input, /*take_derivation_lock=*/true).ok()) {
      client_->AbortDop(*dop).ok();
      continue;
    }
    auto out = client_->CheckinCommit(*dop, MakeObj(i % 100), {input});
    if (out.ok()) ++completed;
  }
  // The reliable channel must mask 30% loss almost always (5 retries
  // per envelope); a handful of exhausted-retry failures is tolerated.
  EXPECT_GE(completed, kCycles * 4 / 5);

  // At-most-once server effects: every completed cycle executed its
  // checkin and commit EXACTLY once — duplicates were suppressed by
  // the dedup table, not replayed into the repository.
  EXPECT_EQ(server_->stats().checkins,
            static_cast<uint64_t>(completed) +
                server_->stats().checkin_failures);
  EXPECT_EQ(server_->stats().dops_committed,
            static_cast<uint64_t>(completed));
  EXPECT_EQ(repo_.stats().dovs_written,
            static_cast<uint64_t>(completed) + 1);  // +1 for the seed

  // Retry accounting: loss showed up as retries and (for lost replies)
  // suppressed duplicate executions, all visible in RpcStats.
  EXPECT_GT(rpc_.stats().retries, 0u);
  EXPECT_GT(rpc_.stats().duplicate_suppressed, 0u);
  EXPECT_GT(network_.stats().messages_lost, 0u);
}

TEST_F(ServerServiceTest, LossNeverDuplicatesDerivationLockState) {
  DovId input = Seed(DaId(1), 5);
  network_.set_loss_probability(0.35);
  for (int i = 0; i < 30; ++i) {
    auto dop = client_->BeginDop(DaId(1));
    if (!dop.ok()) continue;
    bool locked =
        client_->Checkout(*dop, input, /*take_derivation_lock=*/true).ok();
    if (locked) {
      // The lock was granted exactly once; End-of-DOP must free it even
      // when the envelope needed retries.
      EXPECT_EQ(server_->locks().DerivationHolder(input), DaId(1));
    }
    client_->AbortDop(*dop).ok();
  }
  network_.set_loss_probability(0.0);
  // After the last End-of-DOP the lock table must be clean — a retried
  // checkout that executed twice would have leaked a second acquisition.
  auto dop = client_->BeginDop(DaId(2));
  ASSERT_TRUE(dop.ok());
  EXPECT_TRUE(client_->Checkout(*dop, input).ok());
}

TEST_F(ServerServiceTest, ServerCrashFailsFastAndTypedStatusAfterRecovery) {
  DovId input = Seed(DaId(1), 5);
  auto dop = client_->BeginDop(DaId(1));
  ASSERT_TRUE(client_->Checkout(*dop, input).ok());

  network_.SetNodeUp(server_node_, false);
  uint64_t retries_before = rpc_.stats().retries;
  auto out = client_->Checkin(*dop, MakeObj(6), {input});
  EXPECT_TRUE(out.status().IsUnavailable()) << out.status().ToString();
  // Crash, not loss: fail fast without burning the retry budget.
  EXPECT_EQ(rpc_.stats().retries, retries_before);

  // Simulated server restart: volatile DOP registrations and the RPC
  // dedup table die; the repository recovers from its WAL.
  server_->Crash();
  rpc_.ClearNodeState(server_node_);
  ASSERT_TRUE(server_->Recover().ok());

  // The typed unknown-DOP status crosses the wire intact.
  auto after = client_->Checkin(*dop, MakeObj(6), {input});
  EXPECT_TRUE(after.status().IsUnknownDop()) << after.status().ToString();
  EXPECT_TRUE(client_->CommitDop(*dop).IsUnknownDop());

  // A fresh Begin-of-DOP re-registers and completes the work.
  auto fresh = client_->BeginDop(DaId(1));
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(client_->Checkout(*fresh, input).ok());
  EXPECT_TRUE(client_->CheckinCommit(*fresh, MakeObj(6), {input}).ok());
}

TEST_F(ServerServiceTest, RecoveryWarmupRevalidatesInOneRoundTrip) {
  DovId a = Seed(DaId(1), 1);
  DovId b = Seed(DaId(1), 2);
  auto dop = client_->BeginDop(DaId(1));
  ASSERT_TRUE(client_->Checkout(*dop, a).ok());
  ASSERT_TRUE(client_->Checkout(*dop, b).ok());

  client_->Crash();
  uint64_t calls_before = rpc_.stats().calls;
  ASSERT_TRUE(client_->Recover().ok());
  // Both inputs revalidated with ONE BatchRequest envelope.
  EXPECT_EQ(rpc_.stats().calls, calls_before + 1);
  EXPECT_EQ(client_->stats().recovery_warmup_checkouts, 2u);
  EXPECT_TRUE(client_->cache().Contains(a));
  EXPECT_TRUE(client_->cache().Contains(b));
}

TEST_F(ServerServiceTest, WarmupIsIndependentAcrossInputs) {
  // The warm-up batch runs its checkouts independently: one input that
  // became invisible during the outage must not keep the rest cold
  // (the dependent-chain skip rule is for checkin+commit, not here).
  DovId blocked = Seed(DaId(1), 1);
  DovId visible = Seed(DaId(1), 2);
  auto dop = client_->BeginDop(DaId(1));
  ASSERT_TRUE(client_->Checkout(*dop, blocked).ok());
  ASSERT_TRUE(client_->Checkout(*dop, visible).ok());

  client_->Crash();
  // While the workstation is down, another DA derivation-locks
  // `blocked`: its warm-up checkout will now fail the compatibility
  // test. (Map iteration is id-ordered, so `blocked` — the smaller id —
  // is revalidated first and would poison a dependent chain.)
  ASSERT_LT(blocked.value(), visible.value());
  ASSERT_TRUE(server_->BeginDop(DopId(900), DaId(2)).ok());
  ASSERT_TRUE(server_->Checkout(DopId(900), blocked, true).ok());

  ASSERT_TRUE(client_->Recover().ok());
  EXPECT_FALSE(client_->cache().Contains(blocked));
  EXPECT_TRUE(client_->cache().Contains(visible));
  EXPECT_EQ(client_->stats().recovery_warmup_checkouts, 1u);
}

}  // namespace
}  // namespace concord::txn
