#ifndef CONCORD_TESTS_PROCESS_HARNESS_H_
#define CONCORD_TESTS_PROCESS_HARNESS_H_

// Multi-process test harness: spawns real binaries (concordd,
// concord_client), streams their stdout line-by-line, and kills them
// at chosen moments — SIGKILL included, which is the whole point: no
// in-process crash simulation, an actual `kill -9` against an actual
// process with an actual WAL on disk.

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace concord::testing {

inline int64_t MonotonicMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One spawned child process with its stdout captured incrementally.
/// Movable, not copyable; the destructor SIGKILLs anything still
/// running so a failed test never leaks server processes.
class ChildProcess {
 public:
  ChildProcess() = default;
  ChildProcess(const ChildProcess&) = delete;
  ChildProcess& operator=(const ChildProcess&) = delete;
  ChildProcess(ChildProcess&& other) noexcept { *this = std::move(other); }
  ChildProcess& operator=(ChildProcess&& other) noexcept {
    Reap(/*force_kill=*/true);
    pid_ = other.pid_;
    out_fd_ = other.out_fd_;
    exited_ = other.exited_;
    exit_status_ = other.exit_status_;
    lines_ = std::move(other.lines_);
    partial_ = std::move(other.partial_);
    other.pid_ = -1;
    other.out_fd_ = -1;
    return *this;
  }
  ~ChildProcess() { Reap(/*force_kill=*/true); }

  /// fork/exec `binary` with `args` (argv[0] is added automatically).
  /// stderr passes through to the test's stderr for debuggability.
  static ChildProcess Spawn(const std::string& binary,
                            const std::vector<std::string>& args) {
    ChildProcess child;
    int pipe_fds[2];
    if (pipe(pipe_fds) != 0) return child;
    pid_t pid = fork();
    if (pid == 0) {
      close(pipe_fds[0]);
      dup2(pipe_fds[1], STDOUT_FILENO);
      close(pipe_fds[1]);
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(binary.c_str()));
      for (const std::string& arg : args) {
        argv.push_back(const_cast<char*>(arg.c_str()));
      }
      argv.push_back(nullptr);
      execv(binary.c_str(), argv.data());
      std::fprintf(stderr, "exec %s failed: %s\n", binary.c_str(),
                   std::strerror(errno));
      _exit(127);
    }
    close(pipe_fds[1]);
    fcntl(pipe_fds[0], F_SETFL, O_NONBLOCK);
    child.pid_ = pid;
    child.out_fd_ = pipe_fds[0];
    return child;
  }

  bool running() const { return pid_ > 0 && !exited_; }
  pid_t pid() const { return pid_; }

  /// All complete stdout lines seen so far (call Pump/WaitForLine to
  /// advance).
  const std::vector<std::string>& lines() const { return lines_; }

  /// Lines starting with `prefix`.
  std::vector<std::string> LinesWithPrefix(const std::string& prefix) const {
    std::vector<std::string> out;
    for (const std::string& line : lines_) {
      if (line.rfind(prefix, 0) == 0) out.push_back(line);
    }
    return out;
  }

  /// Drains available stdout without blocking longer than `budget_ms`.
  void Pump(int budget_ms = 0) {
    if (out_fd_ < 0) return;
    int64_t deadline = MonotonicMs() + budget_ms;
    do {
      struct pollfd pfd = {out_fd_, POLLIN, 0};
      int timeout = static_cast<int>(deadline - MonotonicMs());
      if (poll(&pfd, 1, timeout < 0 ? 0 : timeout) <= 0) continue;
      char buffer[4096];
      ssize_t n = read(out_fd_, buffer, sizeof(buffer));
      if (n > 0) {
        partial_.append(buffer, static_cast<size_t>(n));
        size_t newline;
        while ((newline = partial_.find('\n')) != std::string::npos) {
          lines_.push_back(partial_.substr(0, newline));
          partial_.erase(0, newline + 1);
        }
      } else if (n == 0) {
        close(out_fd_);
        out_fd_ = -1;
        if (!partial_.empty()) {
          lines_.push_back(partial_);
          partial_.clear();
        }
        return;
      }
    } while (MonotonicMs() < deadline);
  }

  /// Waits up to `timeout_ms` for a line starting with `prefix`
  /// (anywhere in the output so far, then streaming). Returns the line.
  bool WaitForLine(const std::string& prefix, int timeout_ms,
                   std::string* line_out = nullptr) {
    int64_t deadline = MonotonicMs() + timeout_ms;
    size_t scanned = 0;
    while (true) {
      for (; scanned < lines_.size(); ++scanned) {
        if (lines_[scanned].rfind(prefix, 0) == 0) {
          if (line_out != nullptr) *line_out = lines_[scanned];
          return true;
        }
      }
      if (MonotonicMs() >= deadline || out_fd_ < 0) return false;
      Pump(50);
    }
  }

  /// Waits until at least `count` lines start with `prefix`.
  bool WaitForLineCount(const std::string& prefix, size_t count,
                        int timeout_ms) {
    int64_t deadline = MonotonicMs() + timeout_ms;
    while (LinesWithPrefix(prefix).size() < count) {
      if (MonotonicMs() >= deadline || out_fd_ < 0) return false;
      Pump(50);
    }
    return true;
  }

  /// The crash under test: SIGKILL, no warning, no flush, reaped.
  void KillNine() {
    if (!running()) return;
    kill(pid_, SIGKILL);
    waitpid(pid_, &exit_status_, 0);
    exited_ = true;
  }

  /// Graceful stop: SIGTERM, then waits (SIGKILL backstop after 10s).
  void Terminate() {
    if (!running()) return;
    kill(pid_, SIGTERM);
    WaitExit(10000);
    Reap(/*force_kill=*/true);
  }

  /// Waits for natural exit, draining stdout. Returns the exit code,
  /// or -1 on timeout / abnormal termination.
  int WaitExit(int timeout_ms) {
    int64_t deadline = MonotonicMs() + timeout_ms;
    while (!exited_) {
      pid_t done = waitpid(pid_, &exit_status_, WNOHANG);
      if (done == pid_) {
        exited_ = true;
        break;
      }
      if (MonotonicMs() >= deadline) return -1;
      Pump(50);
    }
    Pump(0);  // drain what the child flushed before exiting
    if (!WIFEXITED(exit_status_)) return -1;
    return WEXITSTATUS(exit_status_);
  }

 private:
  void Reap(bool force_kill) {
    if (pid_ > 0 && !exited_) {
      if (force_kill) kill(pid_, SIGKILL);
      waitpid(pid_, &exit_status_, 0);
      exited_ = true;
    }
    if (out_fd_ >= 0) {
      close(out_fd_);
      out_fd_ = -1;
    }
  }

  pid_t pid_ = -1;
  int out_fd_ = -1;
  bool exited_ = false;
  int exit_status_ = 0;
  std::vector<std::string> lines_;
  std::string partial_;
};

/// Spawns, waits for exit (draining output), returns exit code;
/// `lines_out` receives the full stdout.
inline int RunToCompletion(const std::string& binary,
                           const std::vector<std::string>& args,
                           int timeout_ms,
                           std::vector<std::string>* lines_out = nullptr) {
  ChildProcess child = ChildProcess::Spawn(binary, args);
  int rc = child.WaitExit(timeout_ms);
  if (lines_out != nullptr) *lines_out = child.lines();
  return rc;
}

}  // namespace concord::testing

#endif  // CONCORD_TESTS_PROCESS_HARNESS_H_
