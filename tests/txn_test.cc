#include <gtest/gtest.h>

#include "rpc/network.h"
#include "storage/repository.h"
#include "txn/client_tm.h"
#include "txn/local_server_service.h"
#include "txn/lock_manager.h"
#include "txn/server_tm.h"

namespace concord::txn {
namespace {

// --- LockManager ---------------------------------------------------------

TEST(LockManagerTest, DerivationLockExclusivePerDa) {
  LockManager locks;
  EXPECT_TRUE(locks.AcquireDerivation(DovId(1), DaId(1)).ok());
  EXPECT_TRUE(locks.AcquireDerivation(DovId(1), DaId(1)).ok());  // reentrant
  EXPECT_TRUE(locks.AcquireDerivation(DovId(1), DaId(2)).IsLockConflict());
  EXPECT_EQ(locks.DerivationHolder(DovId(1)), DaId(1));
  EXPECT_EQ(locks.stats().derivation_conflicts, 1u);
}

TEST(LockManagerTest, ReleaseDerivationChecksHolder) {
  LockManager locks;
  locks.AcquireDerivation(DovId(1), DaId(1)).ok();
  EXPECT_TRUE(locks.ReleaseDerivation(DovId(1), DaId(2)).IsFailedPrecondition());
  EXPECT_TRUE(locks.ReleaseDerivation(DovId(1), DaId(1)).ok());
  EXPECT_FALSE(locks.DerivationHolder(DovId(1)).valid());
  EXPECT_TRUE(locks.ReleaseDerivation(DovId(1), DaId(1)).IsFailedPrecondition());
}

TEST(LockManagerTest, ReleaseAllDerivationForDa) {
  LockManager locks;
  locks.AcquireDerivation(DovId(1), DaId(1)).ok();
  locks.AcquireDerivation(DovId(2), DaId(1)).ok();
  locks.AcquireDerivation(DovId(3), DaId(2)).ok();
  EXPECT_EQ(locks.ReleaseAllDerivation(DaId(1)), 2);
  EXPECT_EQ(locks.DerivationHolder(DovId(3)), DaId(2));
}

TEST(LockManagerTest, ScopeOwnershipAndUsageGrants) {
  LockManager locks;
  locks.SetScopeOwner(DovId(1), DaId(1));
  EXPECT_TRUE(locks.CanRead(DaId(1), DovId(1)));
  EXPECT_FALSE(locks.CanRead(DaId(2), DovId(1)));
  locks.GrantUsageRead(DovId(1), DaId(2));
  EXPECT_TRUE(locks.CanRead(DaId(2), DovId(1)));
  locks.RevokeUsageRead(DovId(1), DaId(2));
  EXPECT_FALSE(locks.CanRead(DaId(2), DovId(1)));
  EXPECT_GT(locks.stats().scope_denials, 0u);
}

TEST(LockManagerTest, InheritanceMovesOnlyListedFinals) {
  LockManager locks;
  locks.SetScopeOwner(DovId(1), DaId(2));  // final
  locks.SetScopeOwner(DovId(2), DaId(2));  // preliminary: stays with sub
  locks.InheritScopeLocks(DaId(1), DaId(2), {DovId(1)});
  EXPECT_EQ(locks.ScopeOwner(DovId(1)), DaId(1));
  EXPECT_EQ(locks.ScopeOwner(DovId(2)), DaId(2));
  EXPECT_EQ(locks.stats().inheritances, 1u);
}

TEST(LockManagerTest, InheritanceIgnoresForeignDovs) {
  LockManager locks;
  locks.SetScopeOwner(DovId(1), DaId(3));  // owned by someone else
  locks.InheritScopeLocks(DaId(1), DaId(2), {DovId(1)});
  EXPECT_EQ(locks.ScopeOwner(DovId(1)), DaId(3));
}

TEST(LockManagerTest, ReleaseAllClearsEverything) {
  LockManager locks;
  locks.SetScopeOwner(DovId(1), DaId(1));
  locks.AcquireDerivation(DovId(1), DaId(1)).ok();
  locks.GrantUsageRead(DovId(1), DaId(2));
  locks.ReleaseAll();
  EXPECT_FALSE(locks.DerivationHolder(DovId(1)).valid());
  EXPECT_FALSE(locks.ScopeOwner(DovId(1)).valid());
  EXPECT_FALSE(locks.CanRead(DaId(2), DovId(1)));
}

TEST(LockManagerTest, OwnedByLists) {
  LockManager locks;
  locks.SetScopeOwner(DovId(1), DaId(1));
  locks.SetScopeOwner(DovId(2), DaId(1));
  locks.SetScopeOwner(DovId(3), DaId(2));
  EXPECT_EQ(locks.OwnedBy(DaId(1)).size(), 2u);
  EXPECT_EQ(locks.OwnedBy(DaId(9)).size(), 0u);
}

// --- ServerTm / ClientTm fixture ------------------------------------------

class TmTest : public ::testing::Test {
 protected:
  TmTest()
      : network_(&clock_, 1),
        repo_(&clock_) {
    server_node_ = network_.AddNode("server");
    ws_ = network_.AddNode("ws1");
    DesignObjectTypeSetup();
    server_ = std::make_unique<ServerTm>(&repo_, &network_, server_node_,
                                         &scope_);
    service_ = std::make_unique<LocalServerService>(server_.get(), &network_,
                                                    ws_);
    client_ = std::make_unique<ClientTm>(service_.get(), &network_, ws_,
                                         &clock_);
  }

  void DesignObjectTypeSetup() {
    auto* type = repo_.schema().DefineType("thing");
    type->AddAttr({"value", storage::AttrType::kInt, true, 0.0, 1000.0});
    dot_ = type->id();
  }

  storage::DesignObject MakeObj(int64_t value) {
    storage::DesignObject obj(dot_);
    obj.SetAttr("value", value);
    return obj;
  }

  /// Seeds one committed DOV owned by `da`.
  DovId Seed(DaId da, int64_t value) {
    TxnId txn = repo_.Begin();
    storage::DovRecord record;
    record.id = repo_.NextDovId();
    record.owner_da = da;
    record.type = dot_;
    record.data = MakeObj(value);
    repo_.Put(txn, record).ok();
    repo_.Commit(txn).ok();
    server_->locks().SetScopeOwner(record.id, da);
    return record.id;
  }

  SimClock clock_;
  rpc::Network network_;
  storage::Repository repo_;
  PermissiveScopeAuthority scope_;
  NodeId server_node_;
  NodeId ws_;
  DotId dot_;
  std::unique_ptr<ServerTm> server_;
  std::unique_ptr<LocalServerService> service_;
  std::unique_ptr<ClientTm> client_;
};

TEST_F(TmTest, FullDopCycle) {
  DovId input = Seed(DaId(1), 5);
  auto dop = client_->BeginDop(DaId(1));
  ASSERT_TRUE(dop.ok());
  ASSERT_TRUE(client_->Checkout(*dop, input).ok());
  auto obj = client_->Input(*dop, input);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj->GetAttr("value")->as_int(), 5);

  client_->DoWork(*dop, 50).ok();
  auto out = client_->Checkin(*dop, MakeObj(6), {input});
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(client_->CommitDop(*dop).ok());
  EXPECT_EQ(*client_->StateOf(*dop), DopState::kCommitted);
  EXPECT_TRUE(repo_.graph(DaId(1)).IsAncestor(input, *out));
  EXPECT_EQ(server_->locks().ScopeOwner(*out), DaId(1));
}

TEST_F(TmTest, CheckinFailureLeavesDopActive) {
  auto dop = client_->BeginDop(DaId(1));
  auto out = client_->Checkin(*dop, MakeObj(5000), {});  // violates bound
  EXPECT_TRUE(out.status().IsConstraintViolation());
  EXPECT_EQ(*client_->StateOf(*dop), DopState::kActive);
  EXPECT_EQ(server_->stats().checkin_failures, 1u);
  // DOP can still finish by aborting or with a fixed object.
  auto fixed = client_->Checkin(*dop, MakeObj(10), {});
  EXPECT_TRUE(fixed.ok());
  EXPECT_TRUE(client_->CommitDop(*dop).ok());
}

TEST_F(TmTest, DerivationLockBlocksOtherDasCheckout) {
  DovId shared = Seed(DaId(1), 5);
  auto dop1 = client_->BeginDop(DaId(1));
  ASSERT_TRUE(client_->Checkout(*dop1, shared, true).ok());

  auto dop2 = client_->BeginDop(DaId(2));
  Status st = client_->Checkout(*dop2, shared, false);
  EXPECT_TRUE(st.IsLockConflict());
  EXPECT_EQ(server_->stats().checkouts_denied_lock, 1u);

  // Lock released at End-of-DOP; then DA2 may read.
  ASSERT_TRUE(client_->AbortDop(*dop1).ok());
  EXPECT_TRUE(client_->Checkout(*dop2, shared, false).ok());
}

TEST_F(TmTest, ConcurrentCheckoutWithoutDerivationLockAllowed) {
  DovId shared = Seed(DaId(1), 5);
  auto dop1 = client_->BeginDop(DaId(1));
  auto dop2 = client_->BeginDop(DaId(2));
  EXPECT_TRUE(client_->Checkout(*dop1, shared).ok());
  EXPECT_TRUE(client_->Checkout(*dop2, shared).ok());
}

TEST_F(TmTest, SavepointRestoreRoundtrip) {
  auto dop = client_->BeginDop(DaId(1));
  client_->PutWorkspace(*dop, "w", MakeObj(1)).ok();
  ASSERT_TRUE(client_->Save(*dop, "before_change").ok());
  client_->PutWorkspace(*dop, "w", MakeObj(99)).ok();
  client_->DoWork(*dop, 10).ok();
  ASSERT_TRUE(client_->Restore(*dop, "before_change").ok());
  EXPECT_EQ(client_->GetWorkspace(*dop, "w")->GetAttr("value")->as_int(), 1);
  EXPECT_EQ(*client_->WorkDone(*dop), 0u);  // work counter restored too
}

TEST_F(TmTest, DuplicateSavepointNameRejected) {
  auto dop = client_->BeginDop(DaId(1));
  client_->Save(*dop, "sp").ok();
  EXPECT_EQ(client_->Save(*dop, "sp").code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(client_->Restore(*dop, "missing").IsNotFound());
}

TEST_F(TmTest, SuspendResumePreservesContext) {
  auto dop = client_->BeginDop(DaId(1));
  client_->PutWorkspace(*dop, "w", MakeObj(7)).ok();
  ASSERT_TRUE(client_->Suspend(*dop).ok());
  EXPECT_EQ(*client_->StateOf(*dop), DopState::kSuspended);
  // Operations on a suspended DOP fail.
  EXPECT_TRUE(client_->DoWork(*dop, 1).IsFailedPrecondition());
  ASSERT_TRUE(client_->Resume(*dop).ok());
  EXPECT_EQ(client_->GetWorkspace(*dop, "w")->GetAttr("value")->as_int(), 7);
  EXPECT_TRUE(client_->Resume(*dop).IsFailedPrecondition());  // not suspended
}

TEST_F(TmTest, CrashRecoveryRestoresLatestRecoveryPoint) {
  DovId input = Seed(DaId(1), 5);
  auto dop = client_->BeginDop(DaId(1));
  client_->Checkout(*dop, input).ok();  // recovery point here
  client_->DoWork(*dop, 30).ok();
  client_->TakeRecoveryPoint(*dop).ok();
  client_->DoWork(*dop, 17).ok();  // will be lost

  client_->Crash();
  EXPECT_EQ(*client_->StateOf(*dop), DopState::kCrashed);
  auto lost = client_->Recover();
  ASSERT_TRUE(lost.ok());
  EXPECT_EQ(*lost, 17u);
  EXPECT_EQ(*client_->StateOf(*dop), DopState::kActive);
  EXPECT_EQ(*client_->WorkDone(*dop), 30u);
  // Checked-out input is part of the recovered context: no re-checkout.
  EXPECT_TRUE(client_->Input(*dop, input).ok());
}

TEST_F(TmTest, CrashWipesSavepointsButKeepsRecoveryPoints) {
  auto dop = client_->BeginDop(DaId(1));
  client_->DoWork(*dop, 5).ok();
  client_->Save(*dop, "sp").ok();
  client_->TakeRecoveryPoint(*dop).ok();
  client_->Crash();
  client_->Recover().ok();
  EXPECT_EQ(*client_->WorkDone(*dop), 5u);
  EXPECT_TRUE(client_->Restore(*dop, "sp").IsNotFound());  // volatile
}

TEST_F(TmTest, AutomaticRecoveryPointsLimitLoss) {
  client_->set_auto_recovery_interval(10);
  auto dop = client_->BeginDop(DaId(1));
  for (int i = 0; i < 9; ++i) client_->DoWork(*dop, 5).ok();  // 45 units
  client_->Crash();
  auto lost = client_->Recover();
  // Last automatic point at >= 40 units; at most one interval lost.
  EXPECT_LE(*lost, 10u);
  EXPECT_GE(*client_->WorkDone(*dop), 35u);
}

TEST_F(TmTest, CommitRemovesRecoveryPointState) {
  auto dop = client_->BeginDop(DaId(1));
  client_->DoWork(*dop, 10).ok();
  auto out = client_->Checkin(*dop, MakeObj(1), {});
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(client_->CommitDop(*dop).ok());
  client_->Crash();
  auto lost = client_->Recover();
  EXPECT_EQ(*lost, 0u);  // committed DOP lost nothing
  EXPECT_EQ(*client_->StateOf(*dop), DopState::kCommitted);
}

TEST_F(TmTest, ServerCrashYieldsTypedUnknownDopStatus) {
  DovId input = Seed(DaId(1), 5);
  DovId other = Seed(DaId(1), 7);
  auto dop = client_->BeginDop(DaId(1));
  ASSERT_TRUE(client_->Checkout(*dop, input).ok());

  // The crash wipes the server's registration table; the workstation
  // does not notice and keeps using its pre-crash DOP id. Every server
  // interaction must now answer with the *typed* unknown-DOP status so
  // the client can distinguish "server forgot me in a crash" (recover
  // by Begin-of-DOP) from a plain bad id.
  server_->Crash();
  ASSERT_TRUE(server_->Recover().ok());

  auto out = client_->Checkin(*dop, MakeObj(6), {input});
  EXPECT_TRUE(out.status().IsUnknownDop()) << out.status().ToString();
  EXPECT_TRUE(client_->Checkout(*dop, other).IsUnknownDop());
  EXPECT_TRUE(client_->CommitDop(*dop).IsUnknownDop());
  EXPECT_GE(server_->stats().unknown_dop_requests, 3u);

  // A never-registered id still reads as plain not-found.
  EXPECT_TRUE(server_->DaOfDop(DopId(987654)).status().IsNotFound());

  // Begin-of-DOP re-registers and the designer can finish the work.
  auto fresh = client_->BeginDop(DaId(1));
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(client_->Checkout(*fresh, input).ok());
  EXPECT_TRUE(client_->Checkin(*fresh, MakeObj(6), {input}).ok());
  EXPECT_TRUE(client_->CommitDop(*fresh).ok());
}

TEST_F(TmTest, BeginDopFailsWhenWorkstationDown) {
  network_.SetNodeUp(ws_, false);
  EXPECT_FALSE(client_->BeginDop(DaId(1)).ok());
}

TEST_F(TmTest, CommitProtocolFailsWhenServerDown) {
  auto dop = client_->BeginDop(DaId(1));
  network_.SetNodeUp(server_node_, false);
  auto out = client_->Checkin(*dop, MakeObj(1), {});
  EXPECT_FALSE(out.ok());
}

TEST_F(TmTest, TwoPcRunsPerCriticalInteraction) {
  auto dop = client_->BeginDop(DaId(1));
  uint64_t after_begin = client_->two_pc_stats().protocols_run;
  EXPECT_GE(after_begin, 1u);
  client_->Checkin(*dop, MakeObj(1), {}).ok();
  client_->CommitDop(*dop).ok();
  EXPECT_GE(client_->two_pc_stats().protocols_run, after_begin + 2);
}

TEST_F(TmTest, ScopeAuthorityDenialBlocksCheckout) {
  class DenyAll : public ScopeAuthority {
   public:
    bool InScope(DaId, DovId) override { return false; }
  };
  DenyAll deny;
  ServerTm strict(&repo_, &network_, server_node_, &deny);
  LocalServerService strict_service(&strict, &network_, ws_);
  ClientTm client(&strict_service, &network_, ws_, &clock_);
  DovId dov = Seed(DaId(1), 5);
  auto dop = client.BeginDop(DaId(1));
  EXPECT_TRUE(client.Checkout(*dop, dov).IsPermissionDenied());
  EXPECT_EQ(strict.stats().checkouts_denied_scope, 1u);
}

}  // namespace
}  // namespace concord::txn
