// Model-checked randomized tests ("fuzzing with a reference model").
//
// Two long-running randomized suites:
//  - the repository under a random mix of transactions, crashes,
//    recoveries and checkpoints, checked against an in-memory
//    reference model of committed state;
//  - the cooperation manager under random (mostly legal, sometimes
//    illegal) protocol operations, checked against structural
//    invariants of the DA hierarchy, plus a crash/recover round-trip
//    that must preserve the CM state exactly.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "cooperation/cooperation_manager.h"
#include "cooperation/persistence.h"
#include "storage/repository.h"
#include "tests/seed.h"
#include "txn/lock_manager.h"

namespace concord {
namespace {

using test::ScopedSeedReporter;
using test::SeedListFromEnv;
using test::TestSeed;

// --- Repository fuzz ---------------------------------------------------------

class RepositoryFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RepositoryFuzz, MatchesReferenceModelThroughCrashes) {
  ScopedSeedReporter reporter(GetParam());
  Rng rng(GetParam());
  SimClock clock;
  storage::Repository repo(&clock);
  auto* type = repo.schema().DefineType("thing");
  type->AddAttr({"v", storage::AttrType::kInt, true, 0.0, 1e9});
  DotId dot = type->id();

  // Reference model: what committed state must look like.
  std::map<uint64_t, int64_t> model_dovs;   // DovId value -> attr v
  std::map<std::string, std::string> model_meta;

  struct Pending {
    TxnId txn;
    std::vector<std::pair<uint64_t, int64_t>> dovs;
    std::vector<std::pair<std::string, std::string>> meta;
  };
  std::vector<Pending> open_txns;

  for (int step = 0; step < 600; ++step) {
    int action = static_cast<int>(rng.Uniform(0, 9));
    if (action <= 2) {  // begin + buffer some writes
      Pending pending;
      pending.txn = repo.Begin();
      int writes = static_cast<int>(rng.Uniform(1, 3));
      for (int w = 0; w < writes; ++w) {
        storage::DovRecord record;
        record.id = repo.NextDovId();
        record.owner_da = DaId(rng.Uniform(1, 4));
        record.type = dot;
        record.data = storage::DesignObject(dot);
        int64_t value = rng.Uniform(0, 1000);
        record.data.SetAttr("v", value);
        ASSERT_TRUE(repo.Put(pending.txn, record).ok());
        pending.dovs.emplace_back(record.id.value(), value);
      }
      if (rng.Chance(0.5)) {
        std::string key = "k" + std::to_string(rng.Uniform(0, 20));
        std::string value = "v" + std::to_string(step);
        ASSERT_TRUE(repo.PutMeta(pending.txn, key, value).ok());
        pending.meta.emplace_back(key, value);
      }
      open_txns.push_back(std::move(pending));
    } else if (action <= 4 && !open_txns.empty()) {  // commit one
      size_t pick = rng.Index(open_txns.size());
      Pending pending = open_txns[pick];
      open_txns.erase(open_txns.begin() + static_cast<ptrdiff_t>(pick));
      ASSERT_TRUE(repo.Commit(pending.txn).ok());
      for (auto& [id, v] : pending.dovs) model_dovs[id] = v;
      for (auto& [k, v] : pending.meta) model_meta[k] = v;
    } else if (action == 5 && !open_txns.empty()) {  // abort one
      size_t pick = rng.Index(open_txns.size());
      ASSERT_TRUE(repo.Abort(open_txns[pick].txn).ok());
      open_txns.erase(open_txns.begin() + static_cast<ptrdiff_t>(pick));
    } else if (action == 6 && rng.Chance(0.3)) {  // checkpoint
      repo.Checkpoint();
    } else if (action == 7 && rng.Chance(0.3)) {  // crash + recover
      repo.Crash();
      ASSERT_TRUE(repo.Recover().ok());
      open_txns.clear();  // in-flight transactions died with the crash
    }
    // Continuous invariant: committed state == model.
    if (step % 50 == 0) {
      for (const auto& [id, v] : model_dovs) {
        auto record = repo.Get(DovId(id));
        ASSERT_TRUE(record.ok()) << "missing DOV" << id;
        EXPECT_EQ(record->data.GetAttr("v")->as_int(), v);
      }
    }
  }
  // Final full check, after one more crash cycle.
  repo.Crash();
  ASSERT_TRUE(repo.Recover().ok());
  for (const auto& [id, v] : model_dovs) {
    auto record = repo.Get(DovId(id));
    ASSERT_TRUE(record.ok());
    EXPECT_EQ(record->data.GetAttr("v")->as_int(), v);
  }
  for (const auto& [k, v] : model_meta) {
    auto meta = repo.GetMeta(k);
    ASSERT_TRUE(meta.ok()) << k;
    EXPECT_EQ(*meta, v);
  }
}

// CONCORD_SEED=<n> collapses the sweep to the seed under investigation
// (tests/seed.h).
INSTANTIATE_TEST_SUITE_P(
    Seeds, RepositoryFuzz,
    ::testing::ValuesIn(SeedListFromEnv({1, 7, 42, 1234, 99999})));

// --- Cooperation manager fuzz --------------------------------------------------

class CmFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CmFuzz, InvariantsHoldUnderRandomProtocolTraffic) {
  ScopedSeedReporter reporter(GetParam());
  Rng rng(GetParam());
  SimClock clock;
  storage::Repository repo(&clock);
  auto* module = repo.schema().DefineType("module");
  module->AddAttr({"area", storage::AttrType::kDouble, false, {}, {}});
  auto* chip = repo.schema().DefineType("chip");
  chip->AddAttr({"area", storage::AttrType::kDouble, false, {}, {}});
  chip->AddPart({module->id(), 0, 1 << 20});
  txn::LockManager locks;
  cooperation::CooperationManager cm(&repo, &locks, &clock);

  cooperation::DaDescription top_desc;
  top_desc.dot = chip->id();
  top_desc.designer = DesignerId(1);
  top_desc.workstation = NodeId(1);
  DaId top = *cm.InitDesign(top_desc);
  cm.Start(top).ok();

  std::vector<DaId> das{top};
  auto random_da = [&] { return das[rng.Index(das.size())]; };

  for (int step = 0; step < 400; ++step) {
    int action = static_cast<int>(rng.Uniform(0, 11));
    DaId da = random_da();
    switch (action) {
      case 0:
      case 1: {  // create a sub-DA under a random DA (may be illegal)
        cooperation::DaDescription desc;
        desc.dot = module->id();
        desc.designer = DesignerId(rng.Uniform(1, 9));
        desc.workstation = NodeId(rng.Uniform(1, 4));
        auto sub = cm.CreateSubDa(da, desc);
        if (sub.ok()) das.push_back(*sub);
        break;
      }
      case 2:
        cm.Start(da).ok();
        break;
      case 3: {  // mint + evaluate a DOV
        auto state = cm.StateOf(da);
        if (state.ok() && *state == cooperation::DaState::kActive) {
          TxnId txn = repo.Begin();
          storage::DovRecord record;
          record.id = repo.NextDovId();
          record.owner_da = da;
          record.type = module->id();
          record.data = storage::DesignObject(module->id());
          record.data.SetAttr("area", 10.0);
          repo.Put(txn, record).ok();
          repo.Commit(txn).ok();
          locks.SetScopeOwner(record.id, da);
          cm.NoteCheckin(da, record.id);
          cm.Evaluate(da, record.id).ok();
        }
        break;
      }
      case 4:
        cm.SubDaReadyToCommit(da).ok();
        break;
      case 5:
        cm.SubDaImpossibleSpecification(da, "fuzz").ok();
        break;
      case 6: {
        DaId other = random_da();
        cm.TerminateSubDa(da, other).ok();
        break;
      }
      case 7: {
        cooperation::Proposal p;
        cm.Propose(da, random_da(), p).ok();
        break;
      }
      case 8:
        cm.Agree(da).ok();
        break;
      case 9:
        cm.Disagree(da).ok();
        break;
      case 10: {
        DaId other = random_da();
        if (!(other == da)) cm.Require(da, other, {}).ok();
        break;
      }
    }

    // --- Structural invariants, every step ---------------------------
    for (DaId id : cm.AllDas()) {
      auto activity = cm.GetDa(id);
      ASSERT_TRUE(activity.ok());
      const cooperation::DesignActivity& rec = **activity;
      // A terminated DA has only terminated children.
      if (rec.state == cooperation::DaState::kTerminated) {
        for (DaId child : rec.children) {
          EXPECT_EQ(*cm.StateOf(child), cooperation::DaState::kTerminated);
        }
      }
      // Parent link symmetry.
      if (rec.parent.valid()) {
        auto parent = cm.GetDa(rec.parent);
        ASSERT_TRUE(parent.ok());
        bool listed = false;
        for (DaId child : (*parent)->children) {
          if (child == id) listed = true;
        }
        EXPECT_TRUE(listed);
      }
      // A negotiating receiver has a pending proposal (receiver side).
    }
  }

  // --- Crash/recover round-trip preserves the CM state exactly -------
  std::map<uint64_t, std::string> serialized_before;
  for (DaId id : cm.AllDas()) {
    serialized_before[id.value()] =
        cooperation::persistence::SerializeDa(**cm.GetDa(id));
  }
  size_t rels_before = 0;
  for (DaId id : cm.AllDas()) rels_before += cm.RelationshipsOf(id).size();

  cm.Crash();
  repo.Crash();
  ASSERT_TRUE(repo.Recover().ok());
  locks.ReleaseAll();
  ASSERT_TRUE(cm.Recover().ok());

  ASSERT_EQ(cm.AllDas().size(), serialized_before.size());
  for (DaId id : cm.AllDas()) {
    // Recovered DAs serialize identically (scripts excepted — they are
    // DM-side state and not part of the CM's durable image).
    EXPECT_EQ(cooperation::persistence::SerializeDa(**cm.GetDa(id)),
              serialized_before[id.value()])
        << id.ToString();
  }
  size_t rels_after = 0;
  for (DaId id : cm.AllDas()) rels_after += cm.RelationshipsOf(id).size();
  EXPECT_EQ(rels_after, rels_before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CmFuzz,
                         ::testing::ValuesIn(SeedListFromEnv({3, 17, 256,
                                                              4096})));

// --- Lock manager fuzz -----------------------------------------------------------

TEST(LockFuzz, DerivationLockInvariants) {
  uint64_t seed = TestSeed(77);
  ScopedSeedReporter reporter(seed);
  Rng rng(seed);
  txn::LockManager locks;
  std::map<uint64_t, uint64_t> model;  // dov -> holder da
  for (int step = 0; step < 2000; ++step) {
    DovId dov(rng.Uniform(1, 50));
    DaId da(rng.Uniform(1, 8));
    if (rng.Chance(0.6)) {
      Status st = locks.AcquireDerivation(dov, da);
      auto it = model.find(dov.value());
      if (it == model.end() || it->second == da.value()) {
        EXPECT_TRUE(st.ok());
        model[dov.value()] = da.value();
      } else {
        EXPECT_TRUE(st.IsLockConflict());
      }
    } else {
      Status st = locks.ReleaseDerivation(dov, da);
      auto it = model.find(dov.value());
      if (it != model.end() && it->second == da.value()) {
        EXPECT_TRUE(st.ok());
        model.erase(it);
      } else {
        EXPECT_FALSE(st.ok());
      }
    }
    // Holder agreement.
    DaId holder = locks.DerivationHolder(dov);
    auto it = model.find(dov.value());
    EXPECT_EQ(holder.valid(), it != model.end());
    if (it != model.end()) {
      EXPECT_EQ(holder.value(), it->second);
    }
  }
}

}  // namespace
}  // namespace concord
