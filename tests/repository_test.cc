#include <gtest/gtest.h>

#include "storage/derivation_graph.h"
#include "storage/repository.h"

namespace concord::storage {
namespace {

// --- DerivationGraph ---------------------------------------------------

TEST(DerivationGraphTest, AddAndContains) {
  DerivationGraph g;
  EXPECT_TRUE(g.Add(DovId(1), {}).ok());
  EXPECT_TRUE(g.Contains(DovId(1)));
  EXPECT_FALSE(g.Contains(DovId(2)));
  EXPECT_TRUE(g.Add(DovId(1), {}).code() == StatusCode::kAlreadyExists);
}

TEST(DerivationGraphTest, EdgesAndNavigation) {
  DerivationGraph g;
  g.Add(DovId(1), {}).ok();
  g.Add(DovId(2), {DovId(1)}).ok();
  g.Add(DovId(3), {DovId(1)}).ok();
  g.Add(DovId(4), {DovId(2), DovId(3)}).ok();
  EXPECT_EQ(g.Successors(DovId(1)).size(), 2u);
  EXPECT_EQ(g.Predecessors(DovId(4)).size(), 2u);
  EXPECT_EQ(g.Roots(), std::vector<DovId>{DovId(1)});
  EXPECT_EQ(g.Leaves(), std::vector<DovId>{DovId(4)});
}

TEST(DerivationGraphTest, Ancestry) {
  DerivationGraph g;
  g.Add(DovId(1), {}).ok();
  g.Add(DovId(2), {DovId(1)}).ok();
  g.Add(DovId(3), {DovId(2)}).ok();
  g.Add(DovId(4), {}).ok();
  EXPECT_TRUE(g.IsAncestor(DovId(1), DovId(3)));
  EXPECT_TRUE(g.IsAncestor(DovId(2), DovId(2)));  // reflexive
  EXPECT_FALSE(g.IsAncestor(DovId(3), DovId(1)));
  EXPECT_FALSE(g.IsAncestor(DovId(4), DovId(3)));
  EXPECT_FALSE(g.IsAncestor(DovId(99), DovId(1)));
}

TEST(DerivationGraphTest, DescendantsInTopologicalOrder) {
  DerivationGraph g;
  g.Add(DovId(1), {}).ok();
  g.Add(DovId(2), {DovId(1)}).ok();
  g.Add(DovId(3), {DovId(2)}).ok();
  g.Add(DovId(4), {DovId(1)}).ok();
  std::vector<DovId> desc = g.Descendants(DovId(1));
  EXPECT_EQ(desc, (std::vector<DovId>{DovId(2), DovId(3), DovId(4)}));
  EXPECT_TRUE(g.Descendants(DovId(3)).empty());
}

TEST(DerivationGraphTest, ExternalInputsTracked) {
  DerivationGraph g;
  g.Add(DovId(10), {DovId(99)}).ok();  // 99 lives in another DA's graph
  g.Add(DovId(11), {DovId(10)}).ok();
  EXPECT_EQ(g.ExternalInputs(DovId(10)), std::vector<DovId>{DovId(99)});
  EXPECT_TRUE(g.ExternalInputs(DovId(11)).empty());
  // Withdrawal impact: everything derived from the external version.
  EXPECT_EQ(g.DerivedFromExternal(DovId(99)),
            (std::vector<DovId>{DovId(10), DovId(11)}));
  EXPECT_TRUE(g.DerivedFromExternal(DovId(98)).empty());
}

// --- Repository -----------------------------------------------------------

class RepositoryTest : public ::testing::Test {
 protected:
  RepositoryTest() : repo_(&clock_) {
    DesignObjectType* type = repo_.schema().DefineType("thing");
    type->AddAttr({"value", AttrType::kInt, true, 0.0, 1000.0});
    dot_ = type->id();
  }

  DovRecord MakeRecord(DaId da, int64_t value,
                       std::vector<DovId> preds = {}) {
    DovRecord record;
    record.id = repo_.NextDovId();
    record.owner_da = da;
    record.type = dot_;
    record.data = DesignObject(dot_);
    record.data.SetAttr("value", value);
    record.predecessors = std::move(preds);
    record.created_at = clock_.Now();
    return record;
  }

  SimClock clock_;
  Repository repo_;
  DotId dot_;
};

TEST_F(RepositoryTest, CommitMakesVisible) {
  TxnId txn = repo_.Begin();
  DovRecord record = MakeRecord(DaId(1), 42);
  DovId id = record.id;
  ASSERT_TRUE(repo_.Put(txn, record).ok());
  EXPECT_FALSE(repo_.Contains(id));  // not visible before commit
  ASSERT_TRUE(repo_.Commit(txn).ok());
  ASSERT_TRUE(repo_.Contains(id));
  EXPECT_EQ((*repo_.Get(id)).data.GetAttr("value")->as_int(), 42);
}

TEST_F(RepositoryTest, AbortDiscardsWrites) {
  TxnId txn = repo_.Begin();
  DovRecord record = MakeRecord(DaId(1), 1);
  DovId id = record.id;
  repo_.Put(txn, record).ok();
  ASSERT_TRUE(repo_.Abort(txn).ok());
  EXPECT_FALSE(repo_.Contains(id));
  EXPECT_FALSE(repo_.HasActiveTxn(txn));
}

TEST_F(RepositoryTest, CommitRejectsSchemaViolation) {
  TxnId txn = repo_.Begin();
  DovRecord record = MakeRecord(DaId(1), 5000);  // above max bound
  repo_.Put(txn, record).ok();
  Status st = repo_.Commit(txn);
  EXPECT_TRUE(st.IsConstraintViolation());
  // The transaction is still active; abort cleans up.
  EXPECT_TRUE(repo_.HasActiveTxn(txn));
  EXPECT_TRUE(repo_.Abort(txn).ok());
}

TEST_F(RepositoryTest, OperationsOnUnknownTxnFail) {
  EXPECT_TRUE(repo_.Put(TxnId(99), MakeRecord(DaId(1), 1)).IsNotFound());
  EXPECT_TRUE(repo_.Commit(TxnId(99)).IsNotFound());
  EXPECT_TRUE(repo_.Abort(TxnId(99)).IsNotFound());
}

TEST_F(RepositoryTest, DerivationGraphMaintainedPerDa) {
  TxnId txn = repo_.Begin();
  DovRecord a = MakeRecord(DaId(1), 1);
  DovRecord b = MakeRecord(DaId(1), 2, {a.id});
  DovRecord c = MakeRecord(DaId(2), 3);
  repo_.Put(txn, a).ok();
  repo_.Put(txn, b).ok();
  repo_.Put(txn, c).ok();
  ASSERT_TRUE(repo_.Commit(txn).ok());
  EXPECT_EQ(repo_.graph(DaId(1)).size(), 2u);
  EXPECT_TRUE(repo_.graph(DaId(1)).IsAncestor(a.id, b.id));
  EXPECT_EQ(repo_.graph(DaId(2)).size(), 1u);
  EXPECT_EQ(repo_.graph(DaId(3)).size(), 0u);
  EXPECT_EQ(repo_.DovsOf(DaId(1)).size(), 2u);
}

TEST_F(RepositoryTest, FlagUpdateDoesNotDuplicateGraphNode) {
  TxnId txn = repo_.Begin();
  DovRecord record = MakeRecord(DaId(1), 7);
  repo_.Put(txn, record).ok();
  repo_.Commit(txn).ok();

  DovRecord updated = *repo_.Get(record.id);
  updated.propagated = true;
  TxnId txn2 = repo_.Begin();
  repo_.Put(txn2, updated).ok();
  repo_.Commit(txn2).ok();
  EXPECT_TRUE((*repo_.Get(record.id)).propagated);
  EXPECT_EQ(repo_.graph(DaId(1)).size(), 1u);
  EXPECT_EQ(repo_.DovsOf(DaId(1)).size(), 1u);
}

TEST_F(RepositoryTest, MetaRoundtripAndPrefixScan) {
  TxnId txn = repo_.Begin();
  repo_.PutMeta(txn, "cm/da/1", "alpha").ok();
  repo_.PutMeta(txn, "cm/da/2", "beta").ok();
  repo_.PutMeta(txn, "other/x", "gamma").ok();
  repo_.Commit(txn).ok();
  EXPECT_EQ(*repo_.GetMeta("cm/da/1"), "alpha");
  EXPECT_FALSE(repo_.GetMeta("missing").ok());
  EXPECT_EQ(repo_.MetaKeysWithPrefix("cm/da/").size(), 2u);
  EXPECT_EQ(repo_.MetaKeysWithPrefix("zzz").size(), 0u);

  TxnId txn2 = repo_.Begin();
  repo_.DeleteMeta(txn2, "cm/da/1").ok();
  repo_.Commit(txn2).ok();
  EXPECT_FALSE(repo_.GetMeta("cm/da/1").ok());
}

TEST_F(RepositoryTest, CrashLosesUncommitted) {
  TxnId committed = repo_.Begin();
  DovRecord keep = MakeRecord(DaId(1), 10);
  repo_.Put(committed, keep).ok();
  repo_.Commit(committed).ok();

  TxnId in_flight = repo_.Begin();
  DovRecord lose = MakeRecord(DaId(1), 20);
  repo_.Put(in_flight, lose).ok();

  repo_.Crash();
  ASSERT_TRUE(repo_.Recover().ok());
  EXPECT_TRUE(repo_.Contains(keep.id));
  EXPECT_FALSE(repo_.Contains(lose.id));
  EXPECT_FALSE(repo_.HasActiveTxn(in_flight));
}

TEST_F(RepositoryTest, RecoveryRestoresExactContent) {
  TxnId txn = repo_.Begin();
  DovRecord a = MakeRecord(DaId(1), 11);
  DovRecord b = MakeRecord(DaId(1), 22, {a.id});
  repo_.Put(txn, a).ok();
  repo_.Put(txn, b).ok();
  repo_.PutMeta(txn, "k", "v").ok();
  repo_.Commit(txn).ok();
  uint64_t hash_before = (*repo_.Get(b.id)).data.ContentHash();

  repo_.Crash();
  ASSERT_TRUE(repo_.Recover().ok());
  EXPECT_EQ((*repo_.Get(b.id)).data.ContentHash(), hash_before);
  EXPECT_EQ(*repo_.GetMeta("k"), "v");
  EXPECT_TRUE(repo_.graph(DaId(1)).IsAncestor(a.id, b.id));
}

TEST_F(RepositoryTest, IdGeneratorNotReusedAfterRecovery) {
  TxnId txn = repo_.Begin();
  DovRecord a = MakeRecord(DaId(1), 1);
  repo_.Put(txn, a).ok();
  repo_.Commit(txn).ok();
  repo_.Crash();
  repo_.Recover().ok();
  DovId next = repo_.NextDovId();
  EXPECT_GT(next.value(), a.id.value());
}

TEST_F(RepositoryTest, CheckpointTruncatesWalAndRecoveryStillWorks) {
  for (int i = 0; i < 5; ++i) {
    TxnId txn = repo_.Begin();
    repo_.Put(txn, MakeRecord(DaId(1), i)).ok();
    repo_.Commit(txn).ok();
  }
  size_t wal_before = repo_.wal().size();
  size_t dropped = repo_.Checkpoint();
  EXPECT_GT(dropped, 0u);
  EXPECT_LT(repo_.wal().size(), wal_before);

  // Post-checkpoint writes land in the (truncated) log.
  TxnId txn = repo_.Begin();
  DovRecord after = MakeRecord(DaId(1), 99);
  repo_.Put(txn, after).ok();
  repo_.Commit(txn).ok();

  repo_.Crash();
  ASSERT_TRUE(repo_.Recover().ok());
  EXPECT_EQ(repo_.DovsOf(DaId(1)).size(), 6u);
  EXPECT_TRUE(repo_.Contains(after.id));
}

TEST_F(RepositoryTest, TxnSpanningCheckpointReplaysAfterTruncation) {
  // Regression for the truncation boundary: a transaction that begins
  // before a checkpoint and commits after it must replay after the
  // pre-checkpoint log prefix is dropped. The WAL protocol guarantees
  // this by construction — Begin() writes nothing, and Commit publishes
  // the whole BEGIN..COMMIT batch at the commit point — so the spanning
  // transaction's records all land after the checkpoint record. This
  // test pins that property: if the protocol ever changes to log Begin
  // eagerly, truncation would orphan the spanning transaction and this
  // test catches it.
  TxnId spanning = repo_.Begin();
  ASSERT_TRUE(repo_.Put(spanning, MakeRecord(DaId(1), 7)).ok());

  // Committed work the checkpoint can fold into the snapshot.
  TxnId before = repo_.Begin();
  DovRecord pre = MakeRecord(DaId(1), 1);
  ASSERT_TRUE(repo_.Put(before, pre).ok());
  ASSERT_TRUE(repo_.Commit(before).ok());

  repo_.Checkpoint();
  ASSERT_TRUE(repo_.HasActiveTxn(spanning));  // still in flight

  ASSERT_TRUE(repo_.Commit(spanning).ok());
  std::vector<WalRecord> log = repo_.wal().ReadAll();
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log[0].type, WalRecord::Type::kCheckpoint);

  repo_.Crash();
  ASSERT_TRUE(repo_.Recover().ok());
  EXPECT_TRUE(repo_.Contains(pre.id));
  EXPECT_EQ(repo_.DovsOf(DaId(1)).size(), 2u);
}

TEST_F(RepositoryTest, DoubleCrashRecoverCycleIsIdempotent) {
  TxnId txn = repo_.Begin();
  DovRecord a = MakeRecord(DaId(1), 3);
  repo_.Put(txn, a).ok();
  repo_.Commit(txn).ok();
  for (int i = 0; i < 3; ++i) {
    repo_.Crash();
    ASSERT_TRUE(repo_.Recover().ok());
  }
  EXPECT_TRUE(repo_.Contains(a.id));
  EXPECT_EQ(repo_.DovsOf(DaId(1)).size(), 1u);
  EXPECT_EQ(repo_.stats().crashes, 3u);
  EXPECT_EQ(repo_.stats().recoveries, 3u);
}

TEST_F(RepositoryTest, StatsTrackOperations) {
  TxnId t1 = repo_.Begin();
  repo_.Put(t1, MakeRecord(DaId(1), 1)).ok();
  repo_.Commit(t1).ok();
  TxnId t2 = repo_.Begin();
  repo_.Abort(t2).ok();
  EXPECT_EQ(repo_.stats().txns_begun, 2u);
  EXPECT_EQ(repo_.stats().txns_committed, 1u);
  EXPECT_EQ(repo_.stats().txns_aborted, 1u);
  EXPECT_EQ(repo_.stats().dovs_written, 1u);
}

// --- WAL -----------------------------------------------------------------

TEST(WalTest, AppendAndTotals) {
  WriteAheadLog wal;
  wal.Append({WalRecord::Type::kBegin, TxnId(1), std::nullopt, "", ""});
  wal.Append({WalRecord::Type::kCommit, TxnId(1), std::nullopt, "", ""});
  EXPECT_EQ(wal.size(), 2u);
  EXPECT_EQ(wal.total_appended(), 2u);
}

TEST(WalTest, TruncateKeepsSuffixFromCheckpoint) {
  WriteAheadLog wal;
  wal.Append({WalRecord::Type::kBegin, TxnId(1), std::nullopt, "", ""});
  wal.Append({WalRecord::Type::kCheckpoint, TxnId(), std::nullopt, "", ""});
  wal.Append({WalRecord::Type::kBegin, TxnId(2), std::nullopt, "", ""});
  wal.TruncateToLastCheckpoint();
  ASSERT_EQ(wal.size(), 2u);
  EXPECT_EQ(wal.ReadAll()[0].type, WalRecord::Type::kCheckpoint);
  EXPECT_EQ(wal.total_appended(), 3u);  // lifetime count unaffected
}

TEST(WalTest, TruncateWithoutCheckpointIsNoop) {
  WriteAheadLog wal;
  wal.Append({WalRecord::Type::kBegin, TxnId(1), std::nullopt, "", ""});
  wal.TruncateToLastCheckpoint();
  EXPECT_EQ(wal.size(), 1u);
}

}  // namespace
}  // namespace concord::storage
