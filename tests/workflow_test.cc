#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "workflow/constraints.h"
#include "workflow/design_manager.h"
#include "workflow/events.h"
#include "workflow/script.h"

namespace concord::workflow {
namespace {

// --- Script ----------------------------------------------------------------

std::unique_ptr<ScriptNode> Seq3(const std::string& a, const std::string& b,
                                 const std::string& c) {
  std::vector<std::unique_ptr<ScriptNode>> steps;
  steps.push_back(ScriptNode::Dop(a));
  steps.push_back(ScriptNode::Dop(b));
  steps.push_back(ScriptNode::Dop(c));
  return ScriptNode::Sequence(std::move(steps));
}

TEST(ScriptTest, BuildersSetKindAndName) {
  auto dop = ScriptNode::Dop("synth");
  EXPECT_EQ(dop->kind(), ScriptNode::Kind::kDop);
  EXPECT_EQ(dop->name(), "synth");
  EXPECT_EQ(ScriptNode::Open()->kind(), ScriptNode::Kind::kOpen);
  EXPECT_EQ(ScriptNode::DaOp("Evaluate")->name(), "Evaluate");
}

TEST(ScriptTest, PossibleDopTypesCollectsLeaves) {
  Script script("s", Seq3("a", "b", "a"));
  auto types = script.root()->PossibleDopTypes();
  EXPECT_EQ(types, (std::vector<std::string>{"a", "b", "a"}));
}

TEST(ScriptTest, CloneIsDeep) {
  Script original("s", Seq3("a", "b", "c"));
  Script copy = original;  // copy ctor clones
  EXPECT_NE(copy.root(), original.root());
  EXPECT_EQ(copy.root()->TreeSize(), original.root()->TreeSize());
  EXPECT_EQ(copy.ToString(), original.ToString());
}

TEST(ScriptTest, TreeSizeCountsAllNodes) {
  std::vector<std::unique_ptr<ScriptNode>> alts;
  alts.push_back(ScriptNode::Dop("x"));
  alts.push_back(ScriptNode::Dop("y"));
  std::vector<std::unique_ptr<ScriptNode>> steps;
  steps.push_back(ScriptNode::Dop("a"));
  steps.push_back(ScriptNode::Alternative(std::move(alts)));
  Script script("s", ScriptNode::Sequence(std::move(steps)));
  EXPECT_EQ(script.root()->TreeSize(), 5u);
}

// --- Constraints ------------------------------------------------------------

TEST(ConstraintsTest, AdmissiblePrecedes) {
  ConstraintSet cs;
  cs.Precedes("synth", "assembly");
  EXPECT_TRUE(cs.CheckAdmissible({}, "synth").ok());
  EXPECT_TRUE(cs.CheckAdmissible({}, "assembly").IsConstraintViolation());
  EXPECT_TRUE(cs.CheckAdmissible({"synth"}, "assembly").ok());
}

TEST(ConstraintsTest, AdmissibleImmediatelyFollowedBy) {
  ConstraintSet cs;
  cs.ImmediatelyFollowedBy("pad", "plan");
  EXPECT_TRUE(cs.CheckAdmissible({"pad"}, "plan").ok());
  EXPECT_TRUE(cs.CheckAdmissible({"pad"}, "other").IsConstraintViolation());
  EXPECT_TRUE(cs.CheckAdmissible({"x"}, "other").ok());
}

TEST(ConstraintsTest, CompletenessObligations) {
  ConstraintSet cs;
  cs.EventuallyFollowedBy("plan", "assembly");
  EXPECT_TRUE(cs.CheckComplete({"plan", "x", "assembly"}).ok());
  EXPECT_TRUE(cs.CheckComplete({"plan", "x"}).IsConstraintViolation());
  EXPECT_TRUE(cs.CheckComplete({"x"}).ok());  // no 'plan' at all
  // Each occurrence needs its own follower.
  EXPECT_TRUE(
      cs.CheckComplete({"plan", "assembly", "plan"}).IsConstraintViolation());
}

TEST(ConstraintsTest, StaticValidationRejectsBadSequence) {
  ConstraintSet cs;
  cs.Precedes("synth", "assembly");
  Script bad("bad", Seq3("assembly", "synth", "x"));
  EXPECT_TRUE(cs.ValidateScript(bad).IsConstraintViolation());
  Script good("good", Seq3("synth", "x", "assembly"));
  EXPECT_TRUE(cs.ValidateScript(good).ok());
}

TEST(ConstraintsTest, StaticValidationAlternativeIntersection) {
  ConstraintSet cs;
  cs.Precedes("a", "b");
  // alt( a , c ) ; b  — 'a' is not guaranteed (the c-path skips it).
  std::vector<std::unique_ptr<ScriptNode>> alts;
  alts.push_back(ScriptNode::Dop("a"));
  alts.push_back(ScriptNode::Dop("c"));
  std::vector<std::unique_ptr<ScriptNode>> steps;
  steps.push_back(ScriptNode::Alternative(std::move(alts)));
  steps.push_back(ScriptNode::Dop("b"));
  Script script("s", ScriptNode::Sequence(std::move(steps)));
  EXPECT_TRUE(cs.ValidateScript(script).IsConstraintViolation());
}

TEST(ConstraintsTest, StaticValidationAlternativeBothPathsProvide) {
  ConstraintSet cs;
  cs.Precedes("a", "b");
  std::vector<std::unique_ptr<ScriptNode>> alts;
  alts.push_back(ScriptNode::Dop("a"));
  {
    std::vector<std::unique_ptr<ScriptNode>> path;
    path.push_back(ScriptNode::Dop("x"));
    path.push_back(ScriptNode::Dop("a"));
    alts.push_back(ScriptNode::Sequence(std::move(path)));
  }
  std::vector<std::unique_ptr<ScriptNode>> steps;
  steps.push_back(ScriptNode::Alternative(std::move(alts)));
  steps.push_back(ScriptNode::Dop("b"));
  Script script("s", ScriptNode::Sequence(std::move(steps)));
  EXPECT_TRUE(cs.ValidateScript(script).ok());
}

TEST(ConstraintsTest, StaticValidationBranchInterleaving) {
  ConstraintSet cs;
  cs.Precedes("a", "b");
  // branch(a, b): b may start before a completes -> reject.
  std::vector<std::unique_ptr<ScriptNode>> branches;
  branches.push_back(ScriptNode::Dop("a"));
  branches.push_back(ScriptNode::Dop("b"));
  Script script("s", ScriptNode::Branch(std::move(branches)));
  EXPECT_TRUE(cs.ValidateScript(script).IsConstraintViolation());
  // seq(a, branch(b, c)) is fine: a completes before the branch forks.
  std::vector<std::unique_ptr<ScriptNode>> branches2;
  branches2.push_back(ScriptNode::Dop("b"));
  branches2.push_back(ScriptNode::Dop("c"));
  std::vector<std::unique_ptr<ScriptNode>> steps;
  steps.push_back(ScriptNode::Dop("a"));
  steps.push_back(ScriptNode::Branch(std::move(branches2)));
  Script ok("s2", ScriptNode::Sequence(std::move(steps)));
  EXPECT_TRUE(cs.ValidateScript(ok).ok());
}

TEST(ConstraintsTest, OpenSegmentsPassStaticValidation) {
  ConstraintSet cs;
  cs.Precedes("synth", "assembly");
  // Fig. 6a: synth ... open ... assembly.
  std::vector<std::unique_ptr<ScriptNode>> steps;
  steps.push_back(ScriptNode::Dop("synth"));
  steps.push_back(ScriptNode::Open());
  steps.push_back(ScriptNode::Dop("assembly"));
  Script script("fig6a", ScriptNode::Sequence(std::move(steps)));
  EXPECT_TRUE(cs.ValidateScript(script).ok());
}

// --- ECA rules ---------------------------------------------------------------

TEST(RuleEngineTest, DispatchMatchesTypeAndCondition) {
  RuleEngine rules;
  int fired = 0;
  rules.AddRule(
      "Require", "auto-propagate",
      [](const Event& e) { return e.params.count("ok") > 0; },
      [&](const Event&) {
        ++fired;
        return Status::OK();
      });
  Event matching{"Require", DaId(1), DovId(), {{"ok", "1"}}};
  Event wrong_type{"Propose", DaId(1), DovId(), {{"ok", "1"}}};
  Event failing_cond{"Require", DaId(1), DovId(), {}};
  EXPECT_EQ(rules.Dispatch(matching), 1);
  EXPECT_EQ(rules.Dispatch(wrong_type), 0);
  EXPECT_EQ(rules.Dispatch(failing_cond), 0);
  EXPECT_EQ(fired, 1);
}

TEST(RuleEngineTest, ActionErrorsCollected) {
  RuleEngine rules;
  rules.AddRule("E", "fails", nullptr,
                [](const Event&) { return Status::Aborted("rule boom"); });
  rules.AddRule("E", "succeeds", nullptr,
                [](const Event&) { return Status::OK(); });
  std::vector<Status> errors;
  EXPECT_EQ(rules.Dispatch(Event{"E", DaId(), DovId(), {}}, &errors), 2);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_TRUE(errors[0].IsAborted());
}

TEST(RuleEngineTest, RemoveRule) {
  RuleEngine rules;
  RuleId id = rules.AddRule("E", "r", nullptr, nullptr);
  EXPECT_EQ(rules.size(), 1u);
  EXPECT_TRUE(rules.RemoveRule(id).ok());
  EXPECT_TRUE(rules.RemoveRule(id).IsNotFound());
  EXPECT_EQ(rules.size(), 0u);
}

// --- DesignManager -----------------------------------------------------------

/// Tool runner stub: every DOP commits and yields a fresh DOV id.
class StubTools {
 public:
  ToolRunner Runner() {
    return [this](const std::string& type) -> Result<DopOutcome> {
      executed.push_back(type);
      DopOutcome outcome;
      outcome.committed = !fail_types.count(type);
      if (outcome.committed) outcome.output = DovId(++next_dov);
      if (!last_inputs.empty()) outcome.inputs = last_inputs;
      return outcome;
    };
  }
  std::vector<std::string> executed;
  std::set<std::string> fail_types;
  std::vector<DovId> last_inputs;
  uint64_t next_dov = 100;
};

class DmTest : public ::testing::Test {
 protected:
  std::unique_ptr<DesignManager> MakeDm(Script script,
                                        const ConstraintSet* cs = nullptr) {
    auto dm = std::make_unique<DesignManager>(DaId(1), std::move(script), cs,
                                              &clock_);
    dm->SetToolRunner(tools_.Runner());
    return dm;
  }
  SimClock clock_;
  StubTools tools_;
};

TEST_F(DmTest, RunsSequenceInOrder) {
  auto dm = MakeDm(Script("s", Seq3("a", "b", "c")));
  ASSERT_TRUE(dm->Start().ok());
  ASSERT_TRUE(dm->RunToCompletion().ok());
  EXPECT_EQ(dm->state(), DmState::kCompleted);
  EXPECT_EQ(dm->CompletedDops(), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(dm->ProducedDovs().size(), 3u);
  EXPECT_EQ(dm->stats().dops_run, 3u);
}

TEST_F(DmTest, StepRequiresStart) {
  auto dm = MakeDm(Script("s", Seq3("a", "b", "c")));
  EXPECT_FALSE(dm->Step().ok());
}

TEST_F(DmTest, DoubleStartRejected) {
  auto dm = MakeDm(Script("s", Seq3("a", "b", "c")));
  dm->Start().ok();
  EXPECT_TRUE(dm->Start().IsFailedPrecondition());
}

TEST_F(DmTest, AlternativeUsesDecisionMaker) {
  class PickSecond : public DecisionMaker {
   public:
    size_t ChooseAlternative(const ScriptNode&) override { return 1; }
    bool ContinueIteration(const ScriptNode&, int) override { return false; }
    std::vector<std::string> PlanOpenSegment(const ScriptNode&) override {
      return {};
    }
  };
  std::vector<std::unique_ptr<ScriptNode>> alts;
  alts.push_back(ScriptNode::Dop("first"));
  alts.push_back(ScriptNode::Dop("second"));
  auto dm = MakeDm(Script("s", ScriptNode::Alternative(std::move(alts))));
  PickSecond decider;
  dm->SetDecisionMaker(&decider);
  dm->Start().ok();
  ASSERT_TRUE(dm->RunToCompletion().ok());
  EXPECT_EQ(dm->CompletedDops(), std::vector<std::string>{"second"});
}

TEST_F(DmTest, OutOfRangeAlternativeChoiceFails) {
  class PickBad : public DecisionMaker {
   public:
    size_t ChooseAlternative(const ScriptNode&) override { return 5; }
    bool ContinueIteration(const ScriptNode&, int) override { return false; }
    std::vector<std::string> PlanOpenSegment(const ScriptNode&) override {
      return {};
    }
  };
  std::vector<std::unique_ptr<ScriptNode>> alts;
  alts.push_back(ScriptNode::Dop("only"));
  auto dm = MakeDm(Script("s", ScriptNode::Alternative(std::move(alts))));
  PickBad decider;
  dm->SetDecisionMaker(&decider);
  dm->Start().ok();
  EXPECT_FALSE(dm->RunToCompletion().ok());
}

TEST_F(DmTest, IterationRepeatsBody) {
  class TwoMore : public DecisionMaker {
   public:
    size_t ChooseAlternative(const ScriptNode&) override { return 0; }
    bool ContinueIteration(const ScriptNode&, int passes) override {
      return passes < 3;
    }
    std::vector<std::string> PlanOpenSegment(const ScriptNode&) override {
      return {};
    }
  };
  auto dm = MakeDm(
      Script("s", ScriptNode::Iteration(ScriptNode::Dop("body"), 10)));
  TwoMore decider;
  dm->SetDecisionMaker(&decider);
  dm->Start().ok();
  ASSERT_TRUE(dm->RunToCompletion().ok());
  EXPECT_EQ(dm->CompletedDops().size(), 3u);
}

TEST_F(DmTest, IterationBoundedByMaxIterations) {
  class Forever : public DecisionMaker {
   public:
    size_t ChooseAlternative(const ScriptNode&) override { return 0; }
    bool ContinueIteration(const ScriptNode&, int) override { return true; }
    std::vector<std::string> PlanOpenSegment(const ScriptNode&) override {
      return {};
    }
  };
  auto dm =
      MakeDm(Script("s", ScriptNode::Iteration(ScriptNode::Dop("body"), 4)));
  Forever decider;
  dm->SetDecisionMaker(&decider);
  dm->Start().ok();
  ASSERT_TRUE(dm->RunToCompletion().ok());
  EXPECT_EQ(dm->CompletedDops().size(), 4u);
}

TEST_F(DmTest, OpenSegmentRunsPlannedActions) {
  class OpenPlanner : public DecisionMaker {
   public:
    size_t ChooseAlternative(const ScriptNode&) override { return 0; }
    bool ContinueIteration(const ScriptNode&, int) override { return false; }
    std::vector<std::string> PlanOpenSegment(const ScriptNode&) override {
      return {"x", "y"};
    }
  };
  std::vector<std::unique_ptr<ScriptNode>> steps;
  steps.push_back(ScriptNode::Dop("a"));
  steps.push_back(ScriptNode::Open());
  steps.push_back(ScriptNode::Dop("b"));
  auto dm = MakeDm(Script("s", ScriptNode::Sequence(std::move(steps))));
  OpenPlanner decider;
  dm->SetDecisionMaker(&decider);
  dm->Start().ok();
  ASSERT_TRUE(dm->RunToCompletion().ok());
  EXPECT_EQ(dm->CompletedDops(),
            (std::vector<std::string>{"a", "x", "y", "b"}));
}

TEST_F(DmTest, ConstraintRejectionStopsExecution) {
  ConstraintSet cs;
  cs.Precedes("synth", "assembly");
  // Script is statically fine (open could supply synth) but the
  // designer plans nothing, so the runtime check fires.
  std::vector<std::unique_ptr<ScriptNode>> steps;
  steps.push_back(ScriptNode::Open());
  steps.push_back(ScriptNode::Dop("assembly"));
  auto dm = MakeDm(Script("s", ScriptNode::Sequence(std::move(steps))), &cs);
  dm->Start().ok();
  Status st = dm->RunToCompletion();
  EXPECT_TRUE(st.IsConstraintViolation());
  EXPECT_EQ(dm->stats().constraint_rejections, 1u);
}

TEST_F(DmTest, StaticallyInvalidScriptFailsStart) {
  ConstraintSet cs;
  cs.Precedes("synth", "assembly");
  auto dm = MakeDm(Script("s", Seq3("assembly", "x", "y")), &cs);
  EXPECT_TRUE(dm->Start().IsConstraintViolation());
}

TEST_F(DmTest, AbortedDopLeavesRetryPoint) {
  tools_.fail_types.insert("b");
  auto dm = MakeDm(Script("s", Seq3("a", "b", "c")));
  dm->Start().ok();
  Status st = dm->RunToCompletion();
  EXPECT_TRUE(st.IsAborted());
  EXPECT_EQ(dm->CompletedDops(), std::vector<std::string>{"a"});
  // Designer fixes the tool; retrying continues from 'b'.
  tools_.fail_types.clear();
  ASSERT_TRUE(dm->RunToCompletion().ok());
  EXPECT_EQ(dm->CompletedDops(), (std::vector<std::string>{"a", "b", "c"}));
  // 'a' ran once only.
  EXPECT_EQ(std::count(tools_.executed.begin(), tools_.executed.end(), "a"),
            1);
}

TEST_F(DmTest, CrashRecoveryReplaysWithoutReexecution) {
  auto dm = MakeDm(Script("s", Seq3("a", "b", "c")));
  dm->Start().ok();
  // Run two steps' worth: sequence-frame advance + DOPs. Step until two
  // DOPs completed.
  while (dm->CompletedDops().size() < 2) {
    ASSERT_TRUE(dm->Step().ok());
  }
  size_t executed_before = tools_.executed.size();
  dm->Crash();
  EXPECT_EQ(dm->state(), DmState::kCrashed);
  ASSERT_TRUE(dm->Recover().ok());
  EXPECT_EQ(dm->state(), DmState::kActive);
  // Replay restored history without re-running tools.
  EXPECT_EQ(dm->CompletedDops(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(tools_.executed.size(), executed_before);
  EXPECT_EQ(dm->stats().dops_replayed, 2u);
  // Finish live.
  ASSERT_TRUE(dm->RunToCompletion().ok());
  EXPECT_EQ(dm->CompletedDops().size(), 3u);
  EXPECT_EQ(tools_.executed.size(), executed_before + 1);
}

TEST_F(DmTest, RecoveryReplaysDecisions) {
  class PickSecondOnce : public DecisionMaker {
   public:
    size_t ChooseAlternative(const ScriptNode&) override {
      ++alternative_calls;
      return 1;
    }
    bool ContinueIteration(const ScriptNode&, int) override { return false; }
    std::vector<std::string> PlanOpenSegment(const ScriptNode&) override {
      return {};
    }
    int alternative_calls = 0;
  };
  std::vector<std::unique_ptr<ScriptNode>> alts;
  alts.push_back(ScriptNode::Dop("first"));
  alts.push_back(ScriptNode::Dop("second"));
  std::vector<std::unique_ptr<ScriptNode>> steps;
  steps.push_back(ScriptNode::Alternative(std::move(alts)));
  steps.push_back(ScriptNode::Dop("tail"));
  auto dm = MakeDm(Script("s", ScriptNode::Sequence(std::move(steps))));
  PickSecondOnce decider;
  dm->SetDecisionMaker(&decider);
  dm->Start().ok();
  while (dm->CompletedDops().size() < 1) ASSERT_TRUE(dm->Step().ok());
  dm->Crash();
  ASSERT_TRUE(dm->Recover().ok());
  ASSERT_TRUE(dm->RunToCompletion().ok());
  // The alternative was decided once (before the crash), then replayed.
  EXPECT_EQ(decider.alternative_calls, 1);
  EXPECT_EQ(dm->CompletedDops(),
            (std::vector<std::string>{"second", "tail"}));
}

TEST_F(DmTest, SpecModificationEventRestartsExecution) {
  auto dm = MakeDm(Script("s", Seq3("a", "b", "c")));
  dm->Start().ok();
  ASSERT_TRUE(dm->RunToCompletion().ok());
  EXPECT_EQ(dm->state(), DmState::kCompleted);

  Event modify{"Modify_Sub_DA_Specification", DaId(9), DovId(), {}};
  ASSERT_TRUE(dm->HandleEvent(modify).ok());
  EXPECT_EQ(dm->state(), DmState::kActive);
  EXPECT_EQ(dm->stats().restarts, 1u);
  // Previously produced DOVs remain available as starting points.
  EXPECT_EQ(dm->ProducedDovs().size(), 3u);
  ASSERT_TRUE(dm->RunToCompletion().ok());
  EXPECT_EQ(dm->ProducedDovs().size(), 6u);
}

TEST_F(DmTest, WithdrawalPausesOnlyIfDovWasUsed) {
  tools_.last_inputs = {DovId(55)};
  auto dm = MakeDm(Script("s", Seq3("a", "b", "c")));
  dm->Start().ok();
  ASSERT_TRUE(dm->RunToCompletion().ok());

  Event unrelated{"Withdrawal", DaId(2), DovId(77), {}};
  dm->HandleEvent(unrelated).ok();
  EXPECT_EQ(dm->state(), DmState::kCompleted);  // not affected

  Event used{"Withdrawal", DaId(2), DovId(55), {}};
  dm->HandleEvent(used).ok();
  EXPECT_EQ(dm->state(), DmState::kPaused);
  EXPECT_TRUE(dm->UsedDov(DovId(55)));
  ASSERT_TRUE(dm->ResumeAfterPause().ok());
  EXPECT_EQ(dm->state(), DmState::kActive);
}

TEST_F(DmTest, EcaRuleFiresOnEvent) {
  auto dm = MakeDm(Script("s", Seq3("a", "b", "c")));
  int propagated = 0;
  dm->rules().AddRule(
      "Require", "WHEN Require IF available THEN Propagate",
      [](const Event&) { return true; },
      [&](const Event&) {
        ++propagated;
        return Status::OK();
      });
  dm->Start().ok();
  dm->HandleEvent(Event{"Require", DaId(3), DovId(), {}}).ok();
  EXPECT_EQ(propagated, 1);
  EXPECT_EQ(dm->stats().rules_fired, 1u);
}

TEST_F(DmTest, RecoveryAfterRestartEventReplaysBothRuns) {
  auto dm = MakeDm(Script("s", Seq3("a", "b", "c")));
  dm->Start().ok();
  ASSERT_TRUE(dm->RunToCompletion().ok());
  dm->HandleEvent(Event{"Restart", DaId(), DovId(), {}}).ok();
  while (dm->CompletedDops().size() < 1) ASSERT_TRUE(dm->Step().ok());
  size_t executed_before = tools_.executed.size();

  dm->Crash();
  ASSERT_TRUE(dm->Recover().ok());
  // Post-restart prefix: one DOP completed.
  EXPECT_EQ(dm->CompletedDops(), std::vector<std::string>{"a"});
  EXPECT_EQ(tools_.executed.size(), executed_before);
  ASSERT_TRUE(dm->RunToCompletion().ok());
  EXPECT_EQ(dm->state(), DmState::kCompleted);
}

}  // namespace
}  // namespace concord::workflow
