// Real-process crash testing: concordd server processes and
// concord_client workstations over actual sockets, with SIGKILL —
// not simulated Crash() — as the failure. The invariants:
//
//   1. Durability: every commit the client was ACKED survives the
//      server's kill -9 + restart (WAL replay) and reads back with the
//      same content through the full stack.
//   2. Atomicity: a checkin whose 2PC aborted is never visible, before
//      or after a crash — including cross-shard interactions killed
//      between phase 1 and the decision (the durable 2PC ledger).
//   3. In-doubt honesty: an attempt whose outcome the client could not
//      learn (kUnavailable) may land either way, but everything the
//      server exposes must be explainable as some acked-or-in-doubt
//      attempt — no third source of state.
//
// The binaries are injected by CMake (CONCORDD_BINARY,
// CONCORD_CLIENT_BINARY target-file definitions).

#include <gtest/gtest.h>
#include <stdlib.h>
#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "tests/process_harness.h"

namespace concord {
namespace {

using testing::ChildProcess;
using testing::RunToCompletion;

struct PlaneDirs {
  std::string root;
  std::string DataDir(int shard) const {
    return root + "/shard" + std::to_string(shard);
  }
  std::string SocketPath(int shard) const {
    return root + "/s" + std::to_string(shard) + ".sock";
  }
  std::string Addr(int shard) const { return "unix:" + SocketPath(shard); }
};

PlaneDirs MakePlaneDirs() {
  char tmpl[] = "/tmp/concord_crash_XXXXXX";
  char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return PlaneDirs{dir == nullptr ? "/tmp" : dir};
}

ChildProcess StartServer(const PlaneDirs& dirs, int shard,
                         bool expect_ready = true) {
  ChildProcess server = ChildProcess::Spawn(
      CONCORDD_BINARY, {"--listen=" + dirs.Addr(shard),
                        "--data-dir=" + dirs.DataDir(shard),
                        "--shard=" + std::to_string(shard)});
  if (expect_ready) {
    EXPECT_TRUE(server.WaitForLine("READY", 15000))
        << "concordd shard " << shard << " never became ready";
  }
  return server;
}

/// "COMMITTED <dov> <value>" -> (dov, value) pairs.
std::vector<std::pair<uint64_t, int64_t>> ParseCommitted(
    const std::vector<std::string>& lines) {
  std::vector<std::pair<uint64_t, int64_t>> out;
  for (const std::string& line : lines) {
    if (line.rfind("COMMITTED ", 0) != 0) continue;
    std::istringstream fields(line.substr(10));
    uint64_t dov;
    int64_t value;
    if (fields >> dov >> value) out.emplace_back(dov, value);
  }
  return out;
}

std::set<int64_t> ParseValues(const std::vector<std::string>& lines,
                              const char* prefix) {
  std::set<int64_t> out;
  size_t len = std::strlen(prefix);
  for (const std::string& line : lines) {
    if (line.rfind(prefix, 0) != 0) continue;
    std::istringstream fields(line.substr(len));
    int64_t value;
    if (fields >> value) out.insert(value);
  }
  return out;
}

/// Values visible in shard `home`'s repository for `da`, via the
/// admin/dump_da endpoint ("<dov> <value>" lines).
std::set<int64_t> DumpValues(const std::vector<std::string>& servers,
                             uint64_t da, int home) {
  std::vector<std::string> args = {"--client-id=99", "--mode=dump",
                                   "--da=" + std::to_string(da),
                                   "--home=" + std::to_string(home)};
  for (const std::string& server : servers) args.push_back("--server=" + server);
  std::vector<std::string> lines;
  int rc = RunToCompletion(CONCORD_CLIENT_BINARY, args, 30000, &lines);
  EXPECT_EQ(rc, 0) << "dump failed";
  std::set<int64_t> out;
  for (const std::string& line : lines) {
    std::istringstream fields(line);
    uint64_t dov;
    int64_t value;
    if (fields >> dov >> value) out.insert(value);
  }
  return out;
}

/// Writes "<dov> <value> <da>" expect lines and runs --mode=verify.
void VerifyCommitted(
    const PlaneDirs& dirs, const std::vector<std::string>& servers,
    const std::vector<std::pair<uint64_t, int64_t>>& committed,
    const std::vector<uint64_t>& das) {
  std::string expect_path = dirs.root + "/expect.txt";
  std::ofstream expect(expect_path);
  ASSERT_TRUE(expect.is_open());
  for (size_t i = 0; i < committed.size(); ++i) {
    expect << committed[i].first << " " << committed[i].second << " "
           << das[i] << "\n";
  }
  expect.close();
  std::vector<std::string> args = {"--client-id=98", "--mode=verify",
                                   "--expect=" + expect_path};
  for (const std::string& server : servers) args.push_back("--server=" + server);
  std::vector<std::string> lines;
  int rc = RunToCompletion(CONCORD_CLIENT_BINARY, args, 60000, &lines);
  std::string transcript;
  for (const std::string& line : lines) transcript += line + "\n";
  EXPECT_EQ(rc, 0) << "verification failed:\n" << transcript;
}

TEST(ProcessCrash, SingleShardSurvivesKillNineMidCommitStream) {
  PlaneDirs dirs = MakePlaneDirs();
  ChildProcess server = StartServer(dirs, 0);

  ChildProcess client = ChildProcess::Spawn(
      CONCORD_CLIENT_BINARY,
      {"--client-id=1", "--server=" + dirs.Addr(0), "--mode=churn", "--da=1",
       "--home=0", "--ops=40", "--value-base=1000", "--timeout-ms=3000",
       "--sleep-ms=20"});

  // Let commits flow, then kill -9 the server mid-stream: some call is
  // overwhelmingly likely to be between WAL append and reply.
  ASSERT_TRUE(client.WaitForLineCount("COMMITTED", 5, 30000))
      << "no commit stream";
  server.KillNine();

  // Restart on the same data dir: the WAL LOCK left by the dead pid
  // must be reclaimed, not refused.
  server = StartServer(dirs, 0);

  // The client's channel reconnects and the stream continues to the end.
  ASSERT_EQ(client.WaitExit(120000), 0);
  auto committed = ParseCommitted(client.lines());
  EXPECT_GE(committed.size(), 5u);
  // Attempts in the kill window are allowed to be in doubt — but never
  // silently lost: every one of the 40 reported some outcome.
  size_t reported = client.LinesWithPrefix("COMMITTED").size() +
                    client.LinesWithPrefix("INDOUBT").size() +
                    client.LinesWithPrefix("FAILED").size();
  EXPECT_EQ(reported, 40u);

  // Invariant 1: every acked commit is durable with the right content.
  VerifyCommitted(dirs, {dirs.Addr(0)}, committed,
                  std::vector<uint64_t>(committed.size(), 1));

  // Invariant 3: everything visible is an acked or in-doubt attempt.
  std::set<int64_t> acked = ParseValues(client.lines(), "COMMITTED ");
  std::set<int64_t> visible_acked;  // strip the dov column
  for (auto [dov, value] : committed) visible_acked.insert(value);
  std::set<int64_t> in_doubt = ParseValues(client.lines(), "INDOUBT ");
  std::set<int64_t> visible = DumpValues({dirs.Addr(0)}, 1, 0);
  for (int64_t value : visible) {
    EXPECT_TRUE(visible_acked.count(value) > 0 || in_doubt.count(value) > 0)
        << "server exposes value " << value
        << " from neither an acked nor an in-doubt attempt";
  }
  for (int64_t value : visible_acked) {
    EXPECT_TRUE(visible.count(value) > 0)
        << "acked value " << value << " missing from the repository";
  }
  server.Terminate();
}

TEST(ProcessCrash, CrossShardTwoPhaseCommitSurvivesParticipantKill) {
  PlaneDirs dirs = MakePlaneDirs();
  ChildProcess shard0 = StartServer(dirs, 0);
  ChildProcess shard1 = StartServer(dirs, 1);
  std::vector<std::string> servers = {dirs.Addr(0), dirs.Addr(1)};

  // crossfire: seeds DA 1 on shard 0 (values 2000..2011), then runs a
  // cross-shard interaction per seed — checkout-with-derivation-lock on
  // shard 0 + checkin on shard 1 under one true multi-participant 2PC
  // (values 102000..102011).
  ChildProcess client = ChildProcess::Spawn(
      CONCORD_CLIENT_BINARY,
      {"--client-id=2", "--server=" + servers[0], "--server=" + servers[1],
       "--mode=crossfire", "--da=1", "--home=0", "--da2=2", "--home2=1",
       "--ops=12", "--value-base=2000", "--timeout-ms=3000", "--sleep-ms=30"});

  // 12 seed commits + at least 2 cross-shard commits, then kill the
  // checkin participant mid-protocol.
  ASSERT_TRUE(client.WaitForLineCount("COMMITTED", 14, 60000))
      << "cross-shard commit stream never started";
  shard1.KillNine();
  shard1 = StartServer(dirs, 1);
  std::string restaged;
  shard1.WaitForLine("RESTAGED", 5000, &restaged);

  ASSERT_EQ(client.WaitExit(180000), 0);
  auto committed = ParseCommitted(client.lines());
  ASSERT_GE(committed.size(), 14u);

  // Every acked commit — seeds on shard 0 AND cross-shard checkins on
  // shard 1 — must read back through the restarted plane.
  std::vector<uint64_t> das;
  for (auto [dov, value] : committed) {
    das.push_back(value >= 100000 ? 2u : 1u);
  }
  VerifyCommitted(dirs, servers, committed, das);

  // Atomicity on the killed participant: everything DA 2 exposes on
  // shard 1 must be an acked or in-doubt cross-shard attempt.
  std::set<int64_t> acked;
  for (auto [dov, value] : committed) {
    if (value >= 100000) acked.insert(value);
  }
  std::set<int64_t> in_doubt = ParseValues(client.lines(), "INDOUBT ");
  std::set<int64_t> visible = DumpValues(servers, 2, 1);
  for (int64_t value : visible) {
    EXPECT_TRUE(acked.count(value) > 0 || in_doubt.count(value) > 0)
        << "shard 1 exposes cross-shard value " << value
        << " from neither an acked nor an in-doubt attempt";
  }
  for (int64_t value : acked) {
    EXPECT_TRUE(visible.count(value) > 0)
        << "acked cross-shard value " << value << " lost by the kill";
  }
  shard0.Terminate();
  shard1.Terminate();
}

TEST(ProcessCrash, AbortedCheckinsStayInvisibleAcrossRestart) {
  PlaneDirs dirs = MakePlaneDirs();
  ChildProcess server = StartServer(dirs, 0);

  // Every checkin violates the schema bound: the participant votes no,
  // the 2PC aborts by type, and the client learns it.
  std::vector<std::string> lines;
  int rc = RunToCompletion(
      CONCORD_CLIENT_BINARY,
      {"--client-id=3", "--server=" + dirs.Addr(0), "--mode=abort", "--da=5",
       "--home=0", "--ops=6", "--value-base=0", "--timeout-ms=5000"},
      60000, &lines);
  ASSERT_EQ(rc, 0);
  std::set<int64_t> aborted = ParseValues(lines, "ABORTED ");
  ASSERT_EQ(aborted.size(), 6u) << "expected every attempt to abort by type";

  // Invariant 2, pre-crash: nothing visible under the DA.
  EXPECT_TRUE(DumpValues({dirs.Addr(0)}, 5, 0).empty());

  // And the crash must not resurrect them from any staged state.
  server.KillNine();
  server = StartServer(dirs, 0);
  EXPECT_TRUE(DumpValues({dirs.Addr(0)}, 5, 0).empty());
  server.Terminate();
}

TEST(ProcessCrash, WalLockReclaimedFromDeadPidButRefusedWhileHeld) {
  PlaneDirs dirs = MakePlaneDirs();

  // kill -9 leaves the LOCK file (with the dead holder's pid) behind;
  // the next incarnation must reclaim it and serve.
  ChildProcess first = StartServer(dirs, 0);
  first.KillNine();
  ChildProcess second = StartServer(dirs, 0);

  // While an incarnation is alive, a second process on the same data
  // dir must be refused (flock held), naming the live holder.
  ChildProcess intruder = StartServer(dirs, 0, /*expect_ready=*/false);
  EXPECT_NE(intruder.WaitExit(15000), 0)
      << "two concordd processes accepted the same data dir";
  EXPECT_TRUE(second.running());

  // Graceful shutdown releases the lock for the next tenant.
  second.Terminate();
  ChildProcess third = StartServer(dirs, 0);
  EXPECT_TRUE(third.running());
  third.Terminate();
}

}  // namespace
}  // namespace concord
