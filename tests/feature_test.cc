#include <gtest/gtest.h>

#include "storage/feature.h"
#include "storage/object.h"

namespace concord::storage {
namespace {

DesignObject MakeObj(double area, const std::string& domain) {
  DesignObject obj(DotId(1));
  obj.SetAttr("area", area);
  obj.SetAttr("domain", domain);
  return obj;
}

// --- Feature ------------------------------------------------------------

TEST(FeatureTest, RangeFulfillment) {
  Feature f = Feature::Range("a", "area", 10, 20);
  TestToolRegistry tools;
  EXPECT_TRUE(f.IsFulfilledBy(MakeObj(15, "x"), tools));
  EXPECT_TRUE(f.IsFulfilledBy(MakeObj(10, "x"), tools));  // inclusive
  EXPECT_TRUE(f.IsFulfilledBy(MakeObj(20, "x"), tools));
  EXPECT_FALSE(f.IsFulfilledBy(MakeObj(9.99, "x"), tools));
  EXPECT_FALSE(f.IsFulfilledBy(MakeObj(20.01, "x"), tools));
}

TEST(FeatureTest, MissingAttributeIsUnfulfilledNotError) {
  Feature f = Feature::AtMost("a", "nonexistent", 5);
  TestToolRegistry tools;
  EXPECT_FALSE(f.IsFulfilledBy(MakeObj(1, "x"), tools));
}

TEST(FeatureTest, AtMostAtLeast) {
  TestToolRegistry tools;
  EXPECT_TRUE(Feature::AtMost("f", "area", 100)
                  .IsFulfilledBy(MakeObj(100, "x"), tools));
  EXPECT_FALSE(Feature::AtMost("f", "area", 100)
                   .IsFulfilledBy(MakeObj(101, "x"), tools));
  EXPECT_TRUE(Feature::AtLeast("f", "area", 10)
                  .IsFulfilledBy(MakeObj(10, "x"), tools));
  EXPECT_FALSE(Feature::AtLeast("f", "area", 10)
                   .IsFulfilledBy(MakeObj(9, "x"), tools));
}

TEST(FeatureTest, EqualityFeature) {
  Feature f = Feature::Equals("dom", "domain", AttrValue("floorplan"));
  TestToolRegistry tools;
  EXPECT_TRUE(f.IsFulfilledBy(MakeObj(1, "floorplan"), tools));
  EXPECT_FALSE(f.IsFulfilledBy(MakeObj(1, "behavior"), tools));
}

TEST(FeatureTest, PredicateFeatureRunsRegisteredTool) {
  TestToolRegistry tools;
  tools.Register("big_enough", [](const DesignObject& obj) {
    auto v = obj.GetNumeric("area");
    return v.ok() && *v > 50;
  });
  Feature f = Feature::PassesTool("passes", "big_enough");
  EXPECT_TRUE(f.IsFulfilledBy(MakeObj(60, "x"), tools));
  EXPECT_FALSE(f.IsFulfilledBy(MakeObj(40, "x"), tools));
}

TEST(FeatureTest, UnregisteredToolIsUnfulfilled) {
  TestToolRegistry tools;
  Feature f = Feature::PassesTool("passes", "missing_tool");
  EXPECT_FALSE(f.IsFulfilledBy(MakeObj(60, "x"), tools));
}

TEST(FeatureTest, RefinementNarrowsRange) {
  Feature base = Feature::Range("a", "area", 0, 100);
  EXPECT_TRUE(base.IsRefinedBy(Feature::Range("a", "area", 10, 90)));
  EXPECT_TRUE(base.IsRefinedBy(Feature::Range("a", "area", 0, 100)));  // equal
  EXPECT_FALSE(base.IsRefinedBy(Feature::Range("a", "area", -1, 100)));
  EXPECT_FALSE(base.IsRefinedBy(Feature::Range("a", "area", 0, 101)));
  EXPECT_FALSE(base.IsRefinedBy(Feature::Range("a", "other", 10, 90)));
  EXPECT_FALSE(base.IsRefinedBy(Feature::Equals("a", "area", 5)));
}

// --- TestToolRegistry -----------------------------------------------------

TEST(TestToolRegistryTest, RunErrorsOnUnknown) {
  TestToolRegistry tools;
  EXPECT_FALSE(tools.Run("nope", DesignObject(DotId(1))).ok());
  EXPECT_FALSE(tools.Has("nope"));
  tools.Register("yes", [](const DesignObject&) { return true; });
  EXPECT_TRUE(tools.Has("yes"));
  EXPECT_TRUE(*tools.Run("yes", DesignObject(DotId(1))));
}

// --- DesignSpecification --------------------------------------------------

class SpecTest : public ::testing::Test {
 protected:
  SpecTest() {
    spec_.Add(Feature::AtMost("area_limit", "area", 100));
    spec_.Add(Feature::Equals("goal", "domain", AttrValue("floorplan")));
  }
  DesignSpecification spec_;
  TestToolRegistry tools_;
};

TEST_F(SpecTest, EvaluatePartitionsFeatures) {
  QualityState q = spec_.Evaluate(MakeObj(50, "behavior"), tools_);
  EXPECT_EQ(q.fulfilled, std::vector<std::string>{"area_limit"});
  EXPECT_EQ(q.unfulfilled, std::vector<std::string>{"goal"});
  EXPECT_FALSE(q.is_final());
  EXPECT_DOUBLE_EQ(q.completeness(), 0.5);
}

TEST_F(SpecTest, EvaluateFinal) {
  QualityState q = spec_.Evaluate(MakeObj(50, "floorplan"), tools_);
  EXPECT_TRUE(q.is_final());
  EXPECT_DOUBLE_EQ(q.completeness(), 1.0);
}

TEST_F(SpecTest, EmptySpecIsTriviallyFinal) {
  DesignSpecification empty;
  QualityState q = empty.Evaluate(MakeObj(1, "x"), tools_);
  EXPECT_TRUE(q.is_final());
  EXPECT_DOUBLE_EQ(q.completeness(), 1.0);
}

TEST_F(SpecTest, FulfillsSubset) {
  DesignObject obj = MakeObj(50, "behavior");
  EXPECT_TRUE(spec_.FulfillsSubset(obj, {"area_limit"}, tools_));
  EXPECT_FALSE(spec_.FulfillsSubset(obj, {"goal"}, tools_));
  EXPECT_FALSE(spec_.FulfillsSubset(obj, {"area_limit", "goal"}, tools_));
  // Unknown feature names never qualify.
  EXPECT_FALSE(spec_.FulfillsSubset(obj, {"unknown"}, tools_));
  // Empty subset always qualifies.
  EXPECT_TRUE(spec_.FulfillsSubset(obj, {}, tools_));
}

TEST_F(SpecTest, UpsertReplacesByName) {
  spec_.Upsert(Feature::AtMost("area_limit", "area", 42));
  EXPECT_EQ(spec_.size(), 2u);
  EXPECT_DOUBLE_EQ(spec_.Find("area_limit")->max(), 42);
  spec_.Upsert(Feature::AtMost("new_one", "area", 1));
  EXPECT_EQ(spec_.size(), 3u);
}

TEST_F(SpecTest, RemoveFeature) {
  EXPECT_TRUE(spec_.Remove("goal").ok());
  EXPECT_EQ(spec_.Find("goal"), nullptr);
  EXPECT_TRUE(spec_.Remove("goal").IsNotFound());
}

TEST_F(SpecTest, RefinementAddingFeatures) {
  DesignSpecification refined = spec_;
  refined.Add(Feature::AtMost("wl", "wirelength", 500));
  EXPECT_TRUE(refined.IsRefinementOf(spec_));
  EXPECT_FALSE(spec_.IsRefinementOf(refined));  // missing the new feature
}

TEST_F(SpecTest, RefinementNarrowingFeature) {
  DesignSpecification refined = spec_;
  refined.Upsert(Feature::AtMost("area_limit", "area", 80));
  EXPECT_TRUE(refined.IsRefinementOf(spec_));
}

TEST_F(SpecTest, WideningIsNotRefinement) {
  DesignSpecification widened = spec_;
  widened.Upsert(Feature::AtMost("area_limit", "area", 200));
  EXPECT_FALSE(widened.IsRefinementOf(spec_));
}

TEST_F(SpecTest, DroppingFeatureIsNotRefinement) {
  DesignSpecification dropped;
  dropped.Add(Feature::AtMost("area_limit", "area", 100));
  EXPECT_FALSE(dropped.IsRefinementOf(spec_));
}

// --- Property sweep: quality state is monotone in the attribute ------------

struct RangeCase {
  double lo;
  double hi;
  double value;
  bool expect;
};

class RangeFeatureP : public ::testing::TestWithParam<RangeCase> {};

TEST_P(RangeFeatureP, FulfillmentMatchesInterval) {
  const RangeCase& c = GetParam();
  Feature f = Feature::Range("r", "area", c.lo, c.hi);
  TestToolRegistry tools;
  EXPECT_EQ(f.IsFulfilledBy(MakeObj(c.value, "x"), tools), c.expect);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RangeFeatureP,
    ::testing::Values(RangeCase{0, 10, 5, true}, RangeCase{0, 10, 0, true},
                      RangeCase{0, 10, 10, true}, RangeCase{0, 10, -0.1, false},
                      RangeCase{0, 10, 10.1, false},
                      RangeCase{-5, -1, -3, true},
                      RangeCase{-5, -1, 0, false},
                      RangeCase{2, 2, 2, true},   // degenerate interval
                      RangeCase{2, 2, 2.001, false}));

}  // namespace
}  // namespace concord::storage
