// The async script engine: the task graph the script lowering
// produces, the scheduler that drives it (inline deterministic mode
// and pooled mode), and the system-level behaviours built on top —
// per-node progress into the cooperation manager, crash/recovery of a
// half-executed DAG, and one workstation holding hundreds of DOPs in
// flight through the split Begin/Finish tool-run path.

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/concord_system.h"
#include "sim/scenarios.h"
#include "vlsi/tools.h"
#include "workflow/design_manager.h"
#include "workflow/script_scheduler.h"
#include "workflow/task_graph.h"

namespace concord::workflow {
namespace {

Status Ok() { return Status::OK(); }

// --- TaskGraph --------------------------------------------------------------

TEST(TaskGraphTest, RankStringRendersJoinsAsJ) {
  EXPECT_EQ(TaskRankToString({0, 1, 2}), "0.1.2");
  EXPECT_EQ(TaskRankToString({0, kJoinRank}), "0.J");
}

TEST(TaskGraphTest, MinReadyFollowsLexicographicRank) {
  TaskGraph graph;
  TaskNodeId late = graph.AddNode(TaskNodeKind::kDop, {1}, "late", Ok);
  TaskNodeId early = graph.AddNode(TaskNodeKind::kDop, {0, 2}, "early", Ok);
  TaskNodeId join = graph.AddNode(TaskNodeKind::kJoin, {0, kJoinRank}, "j",
                                  nullptr);
  // {0.2} < {0.J} < {1}: the join orders after its subtree but before
  // the next sibling.
  EXPECT_EQ(graph.MinReady(), early);
  graph.MarkRunning(early);
  graph.MarkDone(early);
  EXPECT_EQ(graph.MinReady(), join);
  graph.MarkRunning(join);
  graph.MarkDone(join);
  EXPECT_EQ(graph.MinReady(), late);
}

TEST(TaskGraphTest, EdgesGateReadinessAndMarkDoneUnblocks) {
  TaskGraph graph;
  TaskNodeId a = graph.AddNode(TaskNodeKind::kDop, {0}, "a", Ok);
  TaskNodeId b = graph.AddNode(TaskNodeKind::kDop, {1}, "b", Ok);
  graph.AddEdge(a, b);
  EXPECT_EQ(graph.node(b).state, TaskNodeState::kBlocked);
  EXPECT_EQ(graph.MinReady(), a);
  graph.MarkRunning(a);
  graph.MarkDone(a);
  EXPECT_EQ(graph.node(b).state, TaskNodeState::kReady);
  graph.MarkRunning(b);
  graph.MarkDone(b);
  EXPECT_TRUE(graph.AllDone());
}

TEST(TaskGraphTest, EdgeFromDoneSourceIsSatisfiedOnArrival) {
  TaskGraph graph;
  TaskNodeId a = graph.AddNode(TaskNodeKind::kDop, {0}, "a", Ok);
  graph.MarkRunning(a);
  graph.MarkDone(a);
  // Mid-run expansion wires new nodes to already-finished
  // predecessors; the edge must not block them forever.
  TaskNodeId b = graph.AddNode(TaskNodeKind::kDop, {1}, "b", Ok);
  graph.AddEdge(a, b);
  EXPECT_EQ(graph.node(b).state, TaskNodeState::kReady);
}

TEST(TaskGraphTest, MarkFailedCancelsTransitiveDependents) {
  TaskGraph graph;
  TaskNodeId a = graph.AddNode(TaskNodeKind::kDop, {0}, "a", Ok);
  TaskNodeId b = graph.AddNode(TaskNodeKind::kDop, {1}, "b", Ok);
  TaskNodeId c = graph.AddNode(TaskNodeKind::kDop, {2}, "c", Ok);
  TaskNodeId other = graph.AddNode(TaskNodeKind::kDop, {3}, "other", Ok);
  graph.AddEdge(a, b);
  graph.AddEdge(b, c);
  graph.MarkRunning(a);
  graph.MarkFailed(a);
  EXPECT_EQ(graph.node(a).state, TaskNodeState::kFailed);
  EXPECT_EQ(graph.node(b).state, TaskNodeState::kCancelled);
  EXPECT_EQ(graph.node(c).state, TaskNodeState::kCancelled);
  // The independent subtree is untouched.
  EXPECT_EQ(graph.node(other).state, TaskNodeState::kReady);
  graph.MarkRunning(other);
  graph.MarkDone(other);
  EXPECT_TRUE(graph.AllTerminal());
  EXPECT_FALSE(graph.AllDone());
}

// --- ScriptScheduler --------------------------------------------------------

TEST(SchedulerTest, CancelOnErrorRearmsFailedNodeAsRetryPoint) {
  TaskGraph graph;
  SimClock clock;
  ScriptScheduler scheduler(&clock);
  scheduler.Bind(&graph);
  scheduler.set_error_policy(ErrorPolicy::kCancelOnError);
  bool fail = true;
  TaskNodeId flaky = graph.AddNode(TaskNodeKind::kDop, {0}, "flaky",
                                   [&]() -> Status {
                                     if (fail) return Status::Aborted("boom");
                                     return Status::OK();
                                   });
  graph.AddEdge(flaky, graph.AddNode(TaskNodeKind::kDop, {1}, "next", Ok));
  Status first = scheduler.Run();
  EXPECT_TRUE(first.IsAborted());
  // The retry point: the failed node is ready again, nothing ran past
  // it.
  EXPECT_EQ(graph.node(flaky).state, TaskNodeState::kReady);
  fail = false;
  EXPECT_TRUE(scheduler.Run().ok());
  EXPECT_TRUE(graph.AllDone());
}

TEST(SchedulerTest, ContinueOnErrorDrainsIndependentSubtrees) {
  TaskGraph graph;
  SimClock clock;
  ScriptScheduler scheduler(&clock);
  scheduler.Bind(&graph);
  scheduler.set_error_policy(ErrorPolicy::kContinueOnError);
  TaskNodeId bad = graph.AddNode(TaskNodeKind::kDop, {0}, "bad",
                                 [] { return Status::Internal("broken"); });
  TaskNodeId dependent = graph.AddNode(TaskNodeKind::kDop, {1}, "dep", Ok);
  graph.AddEdge(bad, dependent);
  bool other_ran = false;
  graph.AddNode(TaskNodeKind::kDop, {2}, "other", [&] {
    other_ran = true;
    return Status::OK();
  });
  Status first = scheduler.Run();
  EXPECT_FALSE(first.ok());
  EXPECT_TRUE(other_ran);
  EXPECT_EQ(graph.node(bad).state, TaskNodeState::kFailed);
  EXPECT_EQ(graph.node(dependent).state, TaskNodeState::kCancelled);
  EXPECT_TRUE(graph.AllTerminal());
}

TEST(SchedulerTest, TimeoutConvertsOverrunIntoAborted) {
  TaskGraph graph;
  SimClock clock;
  ScriptScheduler scheduler(&clock);
  scheduler.Bind(&graph);
  graph.AddNode(
      TaskNodeKind::kDop, {0}, "slow",
      [&] {
        clock.Advance(100);
        return Status::OK();
      },
      /*timeout=*/10);
  Status status = scheduler.Run();
  EXPECT_TRUE(status.IsAborted());
  EXPECT_NE(status.message().find("time budget"), std::string::npos);
}

TEST(SchedulerTest, HooksFireInExecutionOrder) {
  TaskGraph graph;
  SimClock clock;
  ScriptScheduler scheduler(&clock);
  scheduler.Bind(&graph);
  std::vector<std::string> events;
  scheduler.hooks().on_start = [&](const TaskNode& node) {
    events.push_back("start:" + node.name);
  };
  scheduler.hooks().on_complete = [&](const TaskNode& node) {
    events.push_back("done:" + node.name);
  };
  scheduler.hooks().on_error = [&](const TaskNode& node, const Status&) {
    events.push_back("error:" + node.name);
  };
  scheduler.set_error_policy(ErrorPolicy::kContinueOnError);
  TaskNodeId a = graph.AddNode(TaskNodeKind::kDop, {0}, "a", Ok);
  TaskNodeId b = graph.AddNode(TaskNodeKind::kDop, {1}, "b",
                               [] { return Status::Internal("x"); });
  (void)a;
  (void)b;
  scheduler.Run().ok();
  EXPECT_EQ(events, (std::vector<std::string>{"start:a", "done:a", "start:b",
                                              "error:b"}));
}

TEST(SchedulerTest, PooledRunExecutesEveryBodyAndTracksPeak) {
  TaskGraph graph;
  SimClock clock;
  ScriptScheduler scheduler(&clock);
  scheduler.Bind(&graph);
  ExecutorPool pool(4);
  scheduler.SetPool(&pool);
  ASSERT_TRUE(scheduler.Pooled());
  constexpr int kNodes = 32;
  std::atomic<int> ran{0};
  for (int i = 0; i < kNodes; ++i) {
    // Built via += rather than operator+: GCC 12's -Wrestrict trips a
    // false positive on the inlined concatenation at -O2 (-Werror leg).
    std::string name = "n";
    name += std::to_string(i);
    graph.AddNode(TaskNodeKind::kDop, {static_cast<uint32_t>(i)}, name, [&] {
      ++ran;
      return Status::OK();
    });
  }
  ASSERT_TRUE(scheduler.Run().ok());
  EXPECT_TRUE(graph.AllDone());
  EXPECT_EQ(ran.load(), kNodes);
  // All 32 independent nodes were dispatchable at once.
  EXPECT_GT(scheduler.peak_concurrency(), 1u);
}

// --- DesignManager on the engine -------------------------------------------

Script BranchScript(int width) {
  std::vector<std::unique_ptr<ScriptNode>> arms;
  for (int i = 0; i < width; ++i) {
    arms.push_back(ScriptNode::Dop("arm" + std::to_string(i)));
  }
  std::vector<std::unique_ptr<ScriptNode>> steps;
  steps.push_back(ScriptNode::Dop("first"));
  steps.push_back(ScriptNode::Branch(std::move(arms)));
  steps.push_back(ScriptNode::Dop("last"));
  return Script("branchy", ScriptNode::Sequence(std::move(steps)));
}

/// Thread-safe counting tool runner (pooled runs call it from executor
/// threads).
ToolRunner CountingRunner(std::atomic<uint64_t>* next_dov) {
  return [next_dov](const std::string&) -> Result<DopOutcome> {
    DopOutcome outcome;
    outcome.committed = true;
    outcome.output = DovId(++*next_dov);
    return outcome;
  };
}

TEST(DmEngineTest, SingleThreadModeReproducesDepthFirstOrder) {
  const std::vector<std::string> expected = {"first", "arm0", "arm1", "arm2",
                                             "arm3", "last"};
  // Inline (no pool) and a 1-thread pool must both take the
  // deterministic path and produce the identical interleaving.
  for (int threads : {0, 1}) {
    SimClock clock;
    std::atomic<uint64_t> next_dov{0};
    DesignManager dm(DaId(1), BranchScript(4), nullptr, &clock);
    dm.SetToolRunner(CountingRunner(&next_dov));
    std::unique_ptr<ExecutorPool> pool;
    if (threads > 0) {
      pool = std::make_unique<ExecutorPool>(threads);
      dm.SetExecutorPool(pool.get());
    }
    ASSERT_TRUE(dm.Start().ok());
    ASSERT_TRUE(dm.RunToCompletion().ok());
    EXPECT_EQ(dm.CompletedDops(), expected) << "threads=" << threads;
    EXPECT_EQ(dm.scheduler().peak_concurrency(), 1u);
  }
}

TEST(DmEngineTest, PooledBranchRunsEveryDopExactlyOnce) {
  // The TSAN storm: a wide branch across real executor threads,
  // repeated, every DOP exactly once per run.
  constexpr int kWidth = 16;
  for (int round = 0; round < 4; ++round) {
    SimClock clock;
    std::atomic<uint64_t> next_dov{0};
    ExecutorPool pool(4);
    DesignManager dm(DaId(1), BranchScript(kWidth), nullptr, &clock);
    dm.SetToolRunner(CountingRunner(&next_dov));
    dm.SetExecutorPool(&pool);
    ASSERT_TRUE(dm.Start().ok());
    ASSERT_TRUE(dm.RunToCompletion().ok());
    EXPECT_EQ(dm.state(), DmState::kCompleted);
    EXPECT_EQ(dm.CompletedDops().size(), static_cast<size_t>(kWidth) + 2);
    EXPECT_EQ(next_dov.load(), static_cast<uint64_t>(kWidth) + 2);
    EXPECT_GT(dm.scheduler().peak_concurrency(), 1u);
  }
}

TEST(DmEngineTest, PooledRetryPointSurvivesAbortedDop) {
  SimClock clock;
  std::atomic<uint64_t> next_dov{0};
  std::atomic<bool> fail_last{true};
  ExecutorPool pool(4);
  DesignManager dm(DaId(1), BranchScript(8), nullptr, &clock);
  dm.SetToolRunner([&](const std::string& type) -> Result<DopOutcome> {
    DopOutcome outcome;
    outcome.committed = !(type == "last" && fail_last.load());
    if (outcome.committed) outcome.output = DovId(++next_dov);
    return outcome;
  });
  dm.SetExecutorPool(&pool);
  ASSERT_TRUE(dm.Start().ok());
  Status first = dm.RunToCompletion();
  ASSERT_FALSE(first.ok());
  EXPECT_TRUE(first.IsAborted());
  EXPECT_EQ(dm.state(), DmState::kActive);
  // The branch completed; only the failed tail is outstanding.
  EXPECT_EQ(dm.CompletedDops().size(), 9u);
  fail_last = false;
  ASSERT_TRUE(dm.RunToCompletion().ok());
  EXPECT_EQ(dm.state(), DmState::kCompleted);
  EXPECT_EQ(dm.CompletedDops().size(), 10u);
}

// --- System level -----------------------------------------------------------

TEST(ScriptEngineSystemTest, ProgressSinkFeedsCooperationManager) {
  core::ConcordSystem system;
  auto da = sim::SetupTopLevelDa(&system, "chip", 6, 1e9, 0);
  ASSERT_TRUE(da.ok()) << da.status().ToString();
  ASSERT_TRUE(system.StartDa(*da).ok());
  ASSERT_TRUE(system.RunDa(*da).ok());
  const cooperation::CmStats& stats = system.cm().stats();
  EXPECT_GT(stats.script_nodes_started, 0u);
  EXPECT_GE(stats.script_nodes_started, stats.script_nodes_completed);
  cooperation::ScriptProgress progress = system.cm().ScriptProgressOf(*da);
  EXPECT_GT(progress.nodes_completed, 0u);
  EXPECT_FALSE(progress.path.empty());
}

TEST(ScriptEngineSystemTest, CrashMidDagRecoveryReusesCommittedNodes) {
  core::ConcordSystem system;
  auto da = sim::SetupTopLevelDa(&system, "chip", 6, 1e9, 0);
  ASSERT_TRUE(da.ok()) << da.status().ToString();
  ASSERT_TRUE(system.StartDa(*da).ok());
  auto& dm = system.dm(*da);
  while (dm.CompletedDops().size() < 2) {
    ASSERT_TRUE(dm.Step().ok());
  }
  uint64_t server_commits = system.server_tm().stats().dops_committed;
  uint64_t server_checkins = system.server_tm().stats().checkins;

  NodeId ws = (*system.cm().GetDa(*da))->workstation;
  system.CrashWorkstation(ws);
  EXPECT_EQ(dm.state(), workflow::DmState::kCrashed);
  ASSERT_TRUE(system.RecoverWorkstation(ws).ok());
  EXPECT_EQ(dm.state(), workflow::DmState::kActive);

  // Recovery re-instantiated the graph from the persistent script and
  // replayed the log: the committed nodes were skipped, not re-run —
  // no new tool executions, no duplicate server effects.
  EXPECT_EQ(dm.CompletedDops().size(), 2u);
  EXPECT_GE(dm.stats().dops_replayed, 2u);
  EXPECT_EQ(system.server_tm().stats().dops_committed, server_commits);
  EXPECT_EQ(system.server_tm().stats().checkins, server_checkins);

  ASSERT_TRUE(system.RunDa(*da).ok());
  EXPECT_EQ(dm.state(), workflow::DmState::kCompleted);
  // The full design plane: exactly 5 DOPs despite the crash.
  EXPECT_EQ(dm.CompletedDops().size(), 5u);
}

TEST(ScriptEngineSystemTest, OneWorkstationSustains128DopsInFlight) {
  core::ConcordSystem system;
  auto result = sim::RunConcurrentDopScenario(&system, /*dops=*/128);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The async Begin/Finish split keeps every DOP open at once at the
  // single client-TM — the ">= 100 concurrent DOPs per workstation"
  // capacity the engine is sized for.
  EXPECT_GE(result->peak_dops_in_flight, 100u);
  EXPECT_EQ(result->dops_committed, 128u);
}

}  // namespace
}  // namespace concord::workflow
