// Coherence suite for the workstation-side DOV cache: warm checkouts
// must skip the server round-trip, but a withdrawn / invalidated /
// derivation-locked DOV must never be served locally, across crashes,
// recovery points and context handovers. The threaded cases run under
// the TSAN CI leg together with a concurrent multi-designer ServerTm
// test (the DOP tables used to be unsynchronized).

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "cooperation/cooperation_manager.h"
#include "rpc/invalidation.h"
#include "rpc/network.h"
#include "rpc/transactional_rpc.h"
#include "storage/repository.h"
#include "txn/client_tm.h"
#include "txn/dov_cache.h"
#include "txn/remote_server_stub.h"
#include "txn/server_tm.h"

namespace concord::txn {
namespace {

using storage::DesignSpecification;
using storage::Feature;

// --- DovCache unit tests --------------------------------------------------

storage::DovRecord MakeRecord(DovId id, DaId owner) {
  storage::DovRecord record;
  record.id = id;
  record.owner_da = owner;
  return record;
}

TEST(DovCacheTest, HitRequiresValidationForTheAskingDa) {
  DovCache cache;
  cache.Insert(DovId(1), MakeRecord(DovId(1), DaId(1)), DaId(1));
  EXPECT_TRUE(cache.Lookup(DovId(1), DaId(1)).ok());
  // Same bytes, different DA: visibility unproven -> miss.
  EXPECT_TRUE(cache.Lookup(DovId(1), DaId(2)).status().IsNotFound());
  cache.Insert(DovId(1), MakeRecord(DovId(1), DaId(1)), DaId(2));
  EXPECT_TRUE(cache.Lookup(DovId(1), DaId(2)).ok());
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(DovCacheTest, LruEvictionBoundsSize) {
  DovCache cache(/*capacity=*/2);
  cache.Insert(DovId(1), MakeRecord(DovId(1), DaId(1)), DaId(1));
  cache.Insert(DovId(2), MakeRecord(DovId(2), DaId(1)), DaId(1));
  EXPECT_TRUE(cache.Lookup(DovId(1), DaId(1)).ok());  // 1 most recent
  cache.Insert(DovId(3), MakeRecord(DovId(3), DaId(1)), DaId(1));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Contains(DovId(1)));
  EXPECT_FALSE(cache.Contains(DovId(2)));  // LRU victim
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(DovCacheTest, OnlyAuthoritativeInsertReArmsTombstonedEntry) {
  DovCache cache;
  cache.Insert(DovId(1), MakeRecord(DovId(1), DaId(1)), DaId(1));
  EXPECT_TRUE(cache.Invalidate(DovId(1)));
  EXPECT_FALSE(cache.Contains(DovId(1)));
  EXPECT_TRUE(cache.IsTombstoned(DovId(1)));
  EXPECT_TRUE(cache.Lookup(DovId(1), DaId(1)).status().IsNotFound());
  // An insert based on a pre-invalidation server reply is refused...
  uint64_t stale_seq = 0;  // sampled before the invalidation above
  EXPECT_FALSE(cache.InsertIfCurrent(DovId(1), MakeRecord(DovId(1), DaId(1)),
                                     DaId(1), stale_seq));
  EXPECT_EQ(cache.stats().stale_inserts_refused, 1u);
  // ...but a fresh authoritative checkout (current seq) re-arms it.
  EXPECT_TRUE(cache.InsertIfCurrent(DovId(1), MakeRecord(DovId(1), DaId(1)),
                                    DaId(1), cache.InvalidationSeq(DovId(1))));
  EXPECT_FALSE(cache.IsTombstoned(DovId(1)));
  EXPECT_TRUE(cache.Lookup(DovId(1), DaId(1)).ok());
}

TEST(DovCacheTest, ClearDropsEntriesAndTombstones) {
  DovCache cache;
  cache.Insert(DovId(1), MakeRecord(DovId(1), DaId(1)), DaId(1));
  cache.Invalidate(DovId(2));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.IsTombstoned(DovId(2)));
}

// --- Full-stack fixture ---------------------------------------------------

/// Manual assembly of the server stack (repository + server-TM + CM +
/// invalidation bus + ServerService RPC endpoint) with two
/// workstations behind RemoteServerStubs, mirroring ConcordSystem's
/// wiring but with direct access to every component.
class CacheCoherenceTest : public ::testing::Test {
 protected:
  struct ForwardingScope : ScopeAuthority {
    cooperation::CooperationManager* cm = nullptr;
    bool InScope(DaId da, DovId dov) override { return cm->InScope(da, dov); }
  };

  CacheCoherenceTest() : network_(&clock_, 7), repo_(&clock_) {
    server_node_ = network_.AddNode("server");
    ws1_ = network_.AddNode("ws1");
    ws2_ = network_.AddNode("ws2");
    bus_ = std::make_unique<rpc::InvalidationBus>(&network_, server_node_);

    auto* block = repo_.schema().DefineType("block");
    auto* module = repo_.schema().DefineType("module");
    auto* chip = repo_.schema().DefineType("chip");
    block->AddAttr({"area", storage::AttrType::kDouble, false, {}, {}});
    module->AddAttr({"area", storage::AttrType::kDouble, false, {}, {}});
    chip->AddAttr({"area", storage::AttrType::kDouble, false, {}, {}});
    module->AddPart({block->id(), 0, 100});
    chip->AddPart({module->id(), 0, 100});
    chip_ = chip->id();
    module_ = module->id();

    server_ = std::make_unique<ServerTm>(&repo_, &network_, server_node_,
                                         &scope_, bus_.get());
    cm_ = std::make_unique<cooperation::CooperationManager>(
        &repo_, &server_->locks(), &clock_);
    scope_.cm = cm_.get();
    cm_->SetWithdrawalSink(
        [this](DaId da, DovId dov, bool invalidated, DovId replacement) {
          rpc::InvalidationMessage message;
          message.kind = invalidated
                             ? rpc::InvalidationMessage::Kind::kInvalidated
                             : rpc::InvalidationMessage::Kind::kWithdrawn;
          message.dov = dov;
          message.origin_da = da;
          message.replacement = replacement;
          bus_->Publish(message);
        });
    RegisterServerService(server_.get(), &rpc_);
    stub1_ = std::make_unique<RemoteServerStub>(&rpc_, ws1_, server_node_);
    stub2_ = std::make_unique<RemoteServerStub>(&rpc_, ws2_, server_node_);
    client1_ = std::make_unique<ClientTm>(stub1_.get(), &network_, ws1_,
                                          &clock_, bus_.get());
    client2_ = std::make_unique<ClientTm>(stub2_.get(), &network_, ws2_,
                                          &clock_, bus_.get());

    DesignSpecification supporter_spec;
    supporter_spec.Add(Feature::AtMost("area_limit", "area", 100));
    top_ = InitDa(chip_, ws1_);
    supporter_ = SubDa(top_, module_, ws1_, supporter_spec);
    requirer_ = SubDa(top_, module_, ws2_);
  }

  DaId InitDa(DotId dot, NodeId ws, DesignSpecification spec = {}) {
    cooperation::DaDescription d;
    d.dot = dot;
    d.spec = std::move(spec);
    d.designer = DesignerId(1);
    d.workstation = ws;
    DaId da = *cm_->InitDesign(std::move(d));
    cm_->Start(da).ok();
    return da;
  }

  DaId SubDa(DaId super, DotId dot, NodeId ws, DesignSpecification spec = {}) {
    cooperation::DaDescription d;
    d.dot = dot;
    d.spec = std::move(spec);
    d.designer = DesignerId(1);
    d.workstation = ws;
    DaId da = *cm_->CreateSubDa(super, std::move(d));
    cm_->Start(da).ok();
    return da;
  }

  /// Commits one DOV owned by `da` (as the server-TM's checkin would).
  DovId MintDov(DaId da, double area) {
    TxnId txn = repo_.Begin();
    storage::DovRecord record;
    record.id = repo_.NextDovId();
    record.owner_da = da;
    record.type = module_;
    record.data = storage::DesignObject(module_);
    record.data.SetAttr("area", area);
    repo_.Put(txn, record).ok();
    repo_.Commit(txn).ok();
    server_->locks().SetScopeOwner(record.id, da);
    cm_->NoteCheckin(da, record.id);
    return record.id;
  }

  /// Establishes the usage relationship and pre-releases `dov`.
  void PropagateToRequirer(DovId dov) {
    ASSERT_TRUE(cm_->Require(requirer_, supporter_, {"area_limit"}).ok());
    ASSERT_TRUE(cm_->Propagate(supporter_, dov).ok());
  }

  SimClock clock_;
  rpc::Network network_;
  rpc::TransactionalRpc rpc_{&network_};
  storage::Repository repo_;
  ForwardingScope scope_;
  NodeId server_node_, ws1_, ws2_;
  DotId chip_, module_;
  std::unique_ptr<rpc::InvalidationBus> bus_;
  std::unique_ptr<ServerTm> server_;
  std::unique_ptr<cooperation::CooperationManager> cm_;
  std::unique_ptr<RemoteServerStub> stub1_;
  std::unique_ptr<RemoteServerStub> stub2_;
  std::unique_ptr<ClientTm> client1_;
  std::unique_ptr<ClientTm> client2_;
  DaId top_, supporter_, requirer_;
};

TEST_F(CacheCoherenceTest, WarmCheckoutSkipsServerRoundTrip) {
  DovId dov = MintDov(supporter_, 50);
  auto dop1 = client1_->BeginDop(supporter_);
  ASSERT_TRUE(client1_->Checkout(*dop1, dov).ok());
  EXPECT_EQ(server_->stats().checkouts, 1u);
  ASSERT_TRUE(client1_->AbortDop(*dop1).ok());

  uint64_t messages_before = network_.stats().messages_sent;
  auto dop2 = client1_->BeginDop(supporter_);
  uint64_t messages_after_begin = network_.stats().messages_sent;
  ASSERT_TRUE(client1_->Checkout(*dop2, dov).ok());
  // Warm checkout: zero network messages, zero server checkouts.
  EXPECT_EQ(network_.stats().messages_sent, messages_after_begin);
  EXPECT_EQ(server_->stats().checkouts, 1u);
  EXPECT_EQ(client1_->stats().checkouts_from_cache, 1u);
  EXPECT_EQ(client1_->stats().checkouts_from_server, 1u);
  EXPECT_GT(messages_after_begin, messages_before);  // Begin-of-DOP did talk
  // The served bytes are the real ones.
  auto obj = client1_->Input(*dop2, dov);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj->GetAttr("area")->as_double(), 50.0);
}

TEST_F(CacheCoherenceTest, CachedBytesDoNotLeakAcrossDas) {
  DovId dov = MintDov(supporter_, 50);
  auto dop1 = client1_->BeginDop(supporter_);
  ASSERT_TRUE(client1_->Checkout(*dop1, dov).ok());  // cached on ws1

  // top_ also runs on ws1 but has no visibility of the supporter's
  // preliminary version: the cache must not serve it.
  auto dop_top = client1_->BeginDop(top_);
  Status st = client1_->Checkout(*dop_top, dov);
  EXPECT_TRUE(st.IsPermissionDenied()) << st.ToString();
  EXPECT_EQ(client1_->stats().checkouts_from_cache, 0u);
}

TEST_F(CacheCoherenceTest, WithdrawnDovNeverServedFromCache) {
  DovId dov = MintDov(supporter_, 50);
  PropagateToRequirer(dov);

  auto dop1 = client2_->BeginDop(requirer_);
  ASSERT_TRUE(client2_->Checkout(*dop1, dov).ok());
  ASSERT_TRUE(client2_->cache().Contains(dov));
  ASSERT_TRUE(client2_->AbortDop(*dop1).ok());

  // Withdrawal pushes the invalidation to every workstation cache.
  ASSERT_TRUE(cm_->WithdrawPropagation(supporter_, dov).ok());
  EXPECT_FALSE(client2_->cache().Contains(dov));

  // The next checkout is forced to the server, which now denies it.
  auto dop2 = client2_->BeginDop(requirer_);
  Status st = client2_->Checkout(*dop2, dov);
  EXPECT_TRUE(st.IsPermissionDenied()) << st.ToString();
  EXPECT_EQ(client2_->stats().checkouts_from_cache, 0u);
}

TEST_F(CacheCoherenceTest, InvalidationDropsCacheAndServesReplacement) {
  DovId dov = MintDov(supporter_, 50);
  DovId replacement = MintDov(supporter_, 40);
  PropagateToRequirer(dov);

  auto dop1 = client2_->BeginDop(requirer_);
  ASSERT_TRUE(client2_->Checkout(*dop1, dov).ok());
  ASSERT_TRUE(client2_->AbortDop(*dop1).ok());

  ASSERT_TRUE(cm_->InvalidateAndReplace(supporter_, dov, replacement).ok());
  EXPECT_FALSE(client2_->cache().Contains(dov));

  auto dop2 = client2_->BeginDop(requirer_);
  EXPECT_TRUE(client2_->Checkout(*dop2, dov).IsPermissionDenied());
  // The replacement was propagated in its place and is readable.
  EXPECT_TRUE(client2_->Checkout(*dop2, replacement).ok());
}

TEST_F(CacheCoherenceTest, DerivationLockPushInvalidatesRemoteCaches) {
  DovId dov = MintDov(supporter_, 50);
  PropagateToRequirer(dov);

  // ws2 warms its cache.
  auto dop_r = client2_->BeginDop(requirer_);
  ASSERT_TRUE(client2_->Checkout(*dop_r, dov).ok());
  ASSERT_TRUE(client2_->AbortDop(*dop_r).ok());
  ASSERT_TRUE(client2_->cache().Contains(dov));

  // The supporter takes the derivation lock on ws1: ws2's cached copy
  // would dodge the compatibility test, so the push must drop it.
  auto dop_s = client1_->BeginDop(supporter_);
  ASSERT_TRUE(
      client1_->Checkout(*dop_s, dov, /*take_derivation_lock=*/true).ok());
  EXPECT_FALSE(client2_->cache().Contains(dov));

  auto dop_r2 = client2_->BeginDop(requirer_);
  Status st = client2_->Checkout(*dop_r2, dov);
  EXPECT_TRUE(st.IsLockConflict()) << st.ToString();
  EXPECT_EQ(client2_->stats().checkouts_from_cache, 0u);  // never warm-served

  // Lock released at End-of-DOP: the requirer can read again (via the
  // server, re-arming its cache).
  ASSERT_TRUE(client1_->CommitDop(*dop_s).ok());
  EXPECT_TRUE(client2_->Checkout(*dop_r2, dov).ok());
}

TEST_F(CacheCoherenceTest, CacheDroppedOnCrashAndRewarmedByRecoveryBatch) {
  DovId dov = MintDov(supporter_, 50);
  auto dop = client1_->BeginDop(supporter_);
  ASSERT_TRUE(client1_->Checkout(*dop, dov).ok());
  ASSERT_TRUE(client1_->cache().Contains(dov));

  client1_->Crash();
  // The cache is volatile workstation memory: the crash empties it.
  EXPECT_EQ(client1_->cache().size(), 0u);
  uint64_t server_checkouts = server_->stats().checkouts;
  uint64_t rpc_calls = rpc_.stats().calls;
  ASSERT_TRUE(client1_->Recover().ok());
  // Recovery revalidated the recovery point's input with one batched
  // round trip: one RPC envelope, one authoritative server checkout,
  // and the entry is warm again — the proof is the server's, not the
  // stale pre-crash one.
  EXPECT_TRUE(client1_->Input(*dop, dov).ok());
  EXPECT_TRUE(client1_->cache().Contains(dov));
  EXPECT_EQ(server_->stats().checkouts, server_checkouts + 1);
  EXPECT_EQ(rpc_.stats().calls, rpc_calls + 1);
  EXPECT_EQ(client1_->stats().recovery_warmup_checkouts, 1u);
  // A new DOP's re-read of the same input is now a pure cache hit.
  auto dop2 = client1_->BeginDop(supporter_);
  server_checkouts = server_->stats().checkouts;
  ASSERT_TRUE(client1_->Checkout(*dop2, dov).ok());
  EXPECT_EQ(server_->stats().checkouts, server_checkouts);
  EXPECT_GT(client1_->stats().checkouts_from_cache, 0u);
}

TEST_F(CacheCoherenceTest, RecoveryRestartsColdWithWarmupDisabled) {
  DovId dov = MintDov(supporter_, 50);
  client1_->set_warm_cache_on_recovery(false);
  auto dop = client1_->BeginDop(supporter_);
  ASSERT_TRUE(client1_->Checkout(*dop, dov).ok());

  client1_->Crash();
  ASSERT_TRUE(client1_->Recover().ok());
  // The recovered context still holds the input (recovery point), but
  // the cache restarts cold: a new DOP's checkout pays the server trip.
  EXPECT_TRUE(client1_->Input(*dop, dov).ok());
  EXPECT_EQ(client1_->cache().size(), 0u);
  auto dop2 = client1_->BeginDop(supporter_);
  uint64_t server_checkouts = server_->stats().checkouts;
  ASSERT_TRUE(client1_->Checkout(*dop2, dov).ok());
  EXPECT_EQ(server_->stats().checkouts, server_checkouts + 1);
}

TEST_F(CacheCoherenceTest, OutageInvalidationIsNotResurrected) {
  DovId dov = MintDov(supporter_, 50);
  PropagateToRequirer(dov);

  // ws2 checks out (recovery point taken) and the DOP commits, making
  // it a handover candidate.
  auto dop = client2_->BeginDop(requirer_);
  ASSERT_TRUE(client2_->Checkout(*dop, dov).ok());
  ASSERT_TRUE(client2_->CommitDop(*dop).ok());

  client2_->Crash();
  // Withdrawal while ws2 is down: the push cannot be delivered and must
  // be queued, not dropped.
  ASSERT_TRUE(cm_->WithdrawPropagation(supporter_, dov).ok());
  EXPECT_EQ(bus_->PendingFor(ws2_), 1u);

  ASSERT_TRUE(client2_->Recover().ok());
  EXPECT_EQ(bus_->PendingFor(ws2_), 0u);  // flushed before traffic
  EXPECT_FALSE(client2_->cache().Contains(dov));
  EXPECT_TRUE(client2_->cache().IsTombstoned(dov));

  // Neither a recovery point nor a handover may resurrect the entry.
  auto successor = client2_->BeginDop(requirer_);
  ASSERT_TRUE(client2_->HandOverContext(*dop, *successor).ok());
  EXPECT_FALSE(client2_->cache().Contains(dov));
  Status st = client2_->Checkout(*successor, dov);
  EXPECT_TRUE(st.IsPermissionDenied()) << st.ToString();
  EXPECT_EQ(client2_->stats().checkouts_from_cache, 0u);
}

TEST_F(CacheCoherenceTest, HandOverContextCarriesCachedInputs) {
  DovId dov = MintDov(supporter_, 50);
  DovId final_dov = MintDov(supporter_, 30);
  auto dop1 = client1_->BeginDop(supporter_);
  ASSERT_TRUE(client1_->Checkout(*dop1, dov).ok());
  ASSERT_TRUE(client1_->Checkout(*dop1, final_dov).ok());
  ASSERT_TRUE(client1_->CommitDop(*dop1).ok());

  auto dop2 = client1_->BeginDop(supporter_);
  ASSERT_TRUE(client1_->HandOverContext(*dop1, *dop2).ok());
  // The successor sees the inputs without any checkout...
  EXPECT_TRUE(client1_->Input(*dop2, dov).ok());
  EXPECT_TRUE(client1_->Input(*dop2, final_dov).ok());
  // ...and its re-checkouts hit the cache: the entries were validated
  // for this same DA at the predecessor's checkouts.
  uint64_t server_checkouts = server_->stats().checkouts;
  ASSERT_TRUE(client1_->Checkout(*dop2, dov).ok());
  EXPECT_EQ(server_->stats().checkouts, server_checkouts);
  EXPECT_EQ(client1_->stats().checkouts_from_cache, 1u);
}

TEST_F(CacheCoherenceTest, HandoverCannotRevalidateWithdrawnGrant) {
  DovId dov = MintDov(supporter_, 50);
  // A second requiring DA hosted on ws1, next to the owner.
  DaId requirer1 = SubDa(top_, module_, ws1_);
  ASSERT_TRUE(cm_->Require(requirer1, supporter_, {"area_limit"}).ok());
  ASSERT_TRUE(cm_->Propagate(supporter_, dov).ok());

  auto dop_r = client1_->BeginDop(requirer1);
  ASSERT_TRUE(client1_->Checkout(*dop_r, dov).ok());
  ASSERT_TRUE(client1_->CommitDop(*dop_r).ok());

  // Withdrawal drops the entry everywhere and revokes the grant; the
  // owner then legitimately re-reads its own version, re-arming the
  // ws1 entry — validated for the owner ONLY.
  ASSERT_TRUE(cm_->WithdrawPropagation(supporter_, dov).ok());
  auto dop_s = client1_->BeginDop(supporter_);
  ASSERT_TRUE(client1_->Checkout(*dop_s, dov).ok());
  ASSERT_TRUE(client1_->cache().Contains(dov));

  // A handover to the requirer's successor must not piggy-back on the
  // owner's re-armed entry: the requirer's grant is gone, so its
  // checkout goes to the server and is denied there.
  auto successor = client1_->BeginDop(requirer1);
  ASSERT_TRUE(client1_->HandOverContext(*dop_r, *successor).ok());
  uint64_t hits_before = client1_->stats().checkouts_from_cache;
  Status st = client1_->Checkout(*successor, dov);
  EXPECT_TRUE(st.IsPermissionDenied()) << st.ToString();
  EXPECT_EQ(client1_->stats().checkouts_from_cache, hits_before);
}

// --- Typed unknown-DOP status after a server crash ------------------------

TEST_F(CacheCoherenceTest, PreCrashDopGetsTypedUnknownDopStatus) {
  DovId dov = MintDov(supporter_, 50);
  auto dop = client1_->BeginDop(supporter_);
  ASSERT_TRUE(client1_->Checkout(*dop, dov).ok());

  server_->Crash();
  ASSERT_TRUE(server_->Recover().ok());
  ASSERT_TRUE(cm_->Recover().ok());  // rebuild scope locks from meta

  // The registration died with the server: requests naming the DOP get
  // the typed status, not a generic not-found.
  storage::DesignObject obj(module_);
  obj.SetAttr("area", 10.0);
  auto checkin = server_->Checkin(*dop, obj, {dov}, clock_.Now());
  EXPECT_TRUE(checkin.status().IsUnknownDop()) << checkin.status().ToString();
  auto checkout = server_->Checkout(*dop, dov, false);
  EXPECT_TRUE(checkout.status().IsUnknownDop());
  EXPECT_TRUE(server_->CommitDop(*dop).IsUnknownDop());
  EXPECT_TRUE(server_->AbortDop(*dop).IsUnknownDop());
  EXPECT_TRUE(server_->DaOfDop(*dop).status().IsUnknownDop());
  EXPECT_GE(server_->stats().unknown_dop_requests, 5u);

  // An id that never existed still reads as plain not-found.
  EXPECT_TRUE(server_->Checkout(DopId(424242), dov, false)
                  .status()
                  .IsNotFound());

  // A fresh Begin-of-DOP works and re-arms the workstation.
  auto fresh = client1_->BeginDop(supporter_);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(client1_->Checkout(*fresh, dov).ok());
}

// --- Threaded coherence (TSAN) --------------------------------------------

TEST_F(CacheCoherenceTest, CheckoutRacingWithdrawalStaysCoherent) {
  DovId dov = MintDov(supporter_, 50);
  PropagateToRequirer(dov);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> served{0};
  std::thread designer([&] {
    // ws2's designer keeps running DOPs against the shared version
    // while the supporter flaps its propagation.
    while (!stop.load()) {
      auto dop = client2_->BeginDop(requirer_);
      if (!dop.ok()) continue;
      Status st = client2_->Checkout(*dop, dov);
      if (st.ok()) ++served;
      client2_->AbortDop(*dop).ok();
    }
  });

  for (int round = 0; round < 200; ++round) {
    ASSERT_TRUE(cm_->WithdrawPropagation(supporter_, dov).ok());
    ASSERT_TRUE(cm_->Propagate(supporter_, dov).ok());
  }
  stop.store(true);
  designer.join();

  // Final withdrawal: whatever interleaving happened above, the cache
  // must end dropped and the server must deny.
  ASSERT_TRUE(cm_->WithdrawPropagation(supporter_, dov).ok());
  EXPECT_FALSE(client2_->cache().Contains(dov));
  auto dop = client2_->BeginDop(requirer_);
  EXPECT_TRUE(client2_->Checkout(*dop, dov).IsPermissionDenied());
}

TEST_F(CacheCoherenceTest, ConcurrentCmMutationStaysCoherent) {
  // CM mutators used to be single-threaded-writer; the DA table is now
  // mutex-guarded, so cooperation ops may run from designer threads.
  // Several threads each build their own sub-DA world (hierarchy ops),
  // mint versions and flap propagation toward a shared requirer, while
  // a reader thread hammers the scope/introspection surface the
  // server-TM uses concurrently.
  constexpr int kMutators = 4;
  constexpr int kRounds = 40;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::thread reader([&] {
    while (!stop.load()) {
      for (DaId da : cm_->AllDas()) {
        cm_->InScope(da, DovId(1));
        cm_->StateOf(da).ok();
        cm_->Children(da);
        cm_->Depth(da);
      }
    }
  });

  std::vector<std::thread> mutators;
  for (int i = 0; i < kMutators; ++i) {
    mutators.emplace_back([&, i] {
      NodeId ws = network_.AddNode("cm_ws" + std::to_string(i));
      DaId supporter = SubDa(top_, module_, ws);
      DaId requirer = SubDa(top_, module_, ws);
      if (!cm_->Require(requirer, supporter, {}).ok()) ++failures;
      for (int round = 0; round < kRounds; ++round) {
        DovId dov = MintDov(supporter, 10.0 + i);
        if (!cm_->Propagate(supporter, dov).ok()) ++failures;
        if (!cm_->WithdrawPropagation(supporter, dov).ok()) ++failures;
        if (!cm_->Evaluate(supporter, dov).ok()) ++failures;
      }
    });
  }
  for (auto& t : mutators) t.join();
  stop.store(true);
  reader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(cm_->stats().propagations,
            static_cast<uint64_t>(kMutators * kRounds));
  EXPECT_EQ(cm_->stats().withdrawals,
            static_cast<uint64_t>(kMutators * kRounds));
  // 2 sub-DAs per mutator plus the fixture's three.
  EXPECT_EQ(cm_->AllDas().size(), static_cast<size_t>(2 * kMutators + 3));
}

TEST_F(CacheCoherenceTest, ConcurrentMultiDesignerServerTm) {
  // One DA + workstation + client-TM per designer thread, all hammering
  // the one server-TM: registration table, derivation-lock lists and
  // stats must hold up (they used to be unsynchronized).
  constexpr int kDesigners = 4;
  constexpr int kIterations = 50;
  std::vector<DaId> das;
  std::vector<DovId> dovs;
  std::vector<std::unique_ptr<RemoteServerStub>> stubs;  // outlive clients
  std::vector<std::unique_ptr<ClientTm>> clients;
  for (int i = 0; i < kDesigners; ++i) {
    NodeId ws = network_.AddNode("ws_t" + std::to_string(i));
    DaId da = SubDa(top_, module_, ws);
    das.push_back(da);
    dovs.push_back(MintDov(da, 10.0 + i));
    stubs.push_back(
        std::make_unique<RemoteServerStub>(&rpc_, ws, server_node_));
    clients.push_back(std::make_unique<ClientTm>(stubs.back().get(),
                                                 &network_, ws, &clock_,
                                                 bus_.get()));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kDesigners; ++i) {
    threads.emplace_back([&, i] {
      for (int it = 0; it < kIterations; ++it) {
        auto dop = clients[i]->BeginDop(das[i]);
        if (!dop.ok()) {
          ++failures;
          continue;
        }
        bool lock = (it % 3) == 0;
        if (!clients[i]->Checkout(*dop, dovs[i], lock).ok()) ++failures;
        storage::DesignObject obj(module_);
        obj.SetAttr("area", 5.0);
        auto out = clients[i]->Checkin(*dop, obj, {dovs[i]});
        if (!out.ok()) ++failures;
        if (!clients[i]->CommitDop(*dop).ok()) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server_->stats().dops_begun,
            static_cast<uint64_t>(kDesigners * kIterations));
  EXPECT_EQ(server_->stats().dops_committed,
            static_cast<uint64_t>(kDesigners * kIterations));
  EXPECT_EQ(server_->stats().checkins,
            static_cast<uint64_t>(kDesigners * kIterations));
  // Each designer's first checkout (and every derivation-locked one)
  // hits the server; the rest are warm.
  uint64_t total_cache_hits = 0;
  for (auto& client : clients) {
    total_cache_hits += client->stats().checkouts_from_cache;
  }
  EXPECT_EQ(server_->stats().checkouts + total_cache_hits,
            static_cast<uint64_t>(kDesigners * kIterations));
  EXPECT_GT(total_cache_hits, 0u);
}

}  // namespace
}  // namespace concord::txn
