#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace concord::sim {
namespace {

TEST(SimulatorTest, CalmRunCompletesAllDesigns) {
  SimulationOptions options;
  options.designs = 3;
  options.complexity = 5;
  MultiDesignerSimulation simulation(options);
  auto report = simulation.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->designs_completed, 3);
  EXPECT_EQ(report->designs_failed, 0);
  EXPECT_EQ(report->workstation_crashes, 0);
  // 5 DOPs per design.
  EXPECT_EQ(report->dops_committed, 15u);
  EXPECT_GT(report->sim_time, 0);
}

TEST(SimulatorTest, DeterministicForSameSeed) {
  SimulationOptions options;
  options.designs = 2;
  options.complexity = 4;
  options.workstation_crash_probability = 0.05;
  options.seed = 77;
  MultiDesignerSimulation a(options);
  MultiDesignerSimulation b(options);
  auto ra = a.Run();
  auto rb = b.Run();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->workstation_crashes, rb->workstation_crashes);
  EXPECT_EQ(ra->scheduler_steps, rb->scheduler_steps);
  EXPECT_EQ(ra->sim_time, rb->sim_time);
  EXPECT_EQ(ra->dops_committed, rb->dops_committed);
}

class CrashySimulatorP : public ::testing::TestWithParam<double> {};

TEST_P(CrashySimulatorP, AllDesignsSurviveCrashInjection) {
  SimulationOptions options;
  options.designs = 4;
  options.complexity = 5;
  options.workstation_crash_probability = GetParam();
  options.server_crash_probability = GetParam() / 4;
  options.seed = 12;
  MultiDesignerSimulation simulation(options);
  auto report = simulation.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The headline invariant: crashes never lose committed work or wedge
  // a design — everything completes, with exactly 5 DOPs per design.
  EXPECT_EQ(report->designs_completed, 4);
  EXPECT_EQ(report->designs_failed, 0);
  EXPECT_EQ(report->dops_committed, 20u);
  if (GetParam() > 0) {
    EXPECT_GT(report->workstation_crashes + report->server_crashes, 0);
  }
}

// Rates are calibrated to the task-DAG engine's step granularity: one
// scheduler step per task node (a 5-DOP design is ~6 draws), so rates
// below ~0.1 leave crash injection probabilistically silent.
INSTANTIATE_TEST_SUITE_P(CrashRates, CrashySimulatorP,
                         ::testing::Values(0.0, 0.15, 0.25, 0.4));

TEST(SimulatorTest, SystemInspectableAfterRun) {
  SimulationOptions options;
  options.designs = 2;
  options.complexity = 4;
  MultiDesignerSimulation simulation(options);
  ASSERT_TRUE(simulation.Run().ok());
  // Every design reached a final DOV satisfying its specification.
  for (DaId da : simulation.das()) {
    auto current = simulation.system().CurrentVersion(da);
    ASSERT_TRUE(current.ok());
    auto quality = simulation.system().cm().Evaluate(da, *current);
    ASSERT_TRUE(quality.ok());
    EXPECT_TRUE(quality->is_final());
  }
}

}  // namespace
}  // namespace concord::sim
