#ifndef CONCORD_TESTS_SEED_H_
#define CONCORD_TESTS_SEED_H_

// Seed-replay discipline for every randomized suite. A failing run
// must be reproducible with one command:
//
//   CONCORD_SEED=<n> ctest -R fuzz_test --output-on-failure
//
// Three pieces make that work:
//   * TestSeed(default): the seed actually used — CONCORD_SEED when
//     set and parseable, the suite's default otherwise.
//   * SeedListFromEnv(defaults): for seed-parameterized suites
//     (INSTANTIATE_TEST_SUITE_P over seeds); CONCORD_SEED collapses
//     the sweep to the one seed under investigation.
//   * ScopedSeedReporter: declared at the top of a randomized test
//     body; on failure it prints the CONCORD_SEED=<n> replay line.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

namespace concord::test {

/// The seed a randomized test should run with: `CONCORD_SEED` from the
/// environment when set and fully numeric, `default_seed` otherwise.
inline uint64_t TestSeed(uint64_t default_seed) {
  const char* env = std::getenv("CONCORD_SEED");
  if (env == nullptr || *env == '\0') return default_seed;
  char* end = nullptr;
  uint64_t parsed = std::strtoull(env, &end, 10);
  if (end == nullptr || *end != '\0') {
    std::fprintf(stderr, "seed.h: ignoring unparseable CONCORD_SEED=%s\n",
                 env);
    return default_seed;
  }
  return parsed;
}

/// Seed list for a parameterized sweep: the defaults normally, or the
/// single CONCORD_SEED override when replaying a failure. Safe to call
/// at static-initialization time (INSTANTIATE_TEST_SUITE_P).
inline std::vector<uint64_t> SeedListFromEnv(std::vector<uint64_t> defaults) {
  const char* env = std::getenv("CONCORD_SEED");
  if (env == nullptr || *env == '\0') return defaults;
  char* end = nullptr;
  uint64_t parsed = std::strtoull(env, &end, 10);
  if (end == nullptr || *end != '\0') return defaults;
  return {parsed};
}

/// Prints the replay line when the enclosing test fails. Declare it
/// right after drawing the seed:
///
///   uint64_t seed = TestSeed(42);
///   ScopedSeedReporter reporter(seed);
///   Rng rng(seed);
class ScopedSeedReporter {
 public:
  explicit ScopedSeedReporter(uint64_t seed) : seed_(seed) {}
  ~ScopedSeedReporter() {
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr,
                   "[  SEED    ] test failed with seed %llu — replay with "
                   "CONCORD_SEED=%llu\n",
                   static_cast<unsigned long long>(seed_),
                   static_cast<unsigned long long>(seed_));
    }
  }
  ScopedSeedReporter(const ScopedSeedReporter&) = delete;
  ScopedSeedReporter& operator=(const ScopedSeedReporter&) = delete;

 private:
  uint64_t seed_;
};

}  // namespace concord::test

#endif  // CONCORD_TESTS_SEED_H_
