// Multi-threaded stress tests for the sharded repository and the
// lock-manager tables: parallel checkout/modify/checkin traffic, lock
// conflicts under real contention, and WAL recovery after a server
// crash injected in the middle of concurrent commits.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "storage/repository.h"
#include "txn/lock_manager.h"

namespace concord::storage {
namespace {

class ConcurrentRepositoryTest : public ::testing::Test {
 protected:
  ConcurrentRepositoryTest() : repo_(&clock_) {
    DesignObjectType* type = repo_.schema().DefineType("thing");
    type->AddAttr({"value", AttrType::kInt, true, 0.0, 1000.0});
    dot_ = type->id();
  }

  /// Thread-safe: NextDovId() is atomic and the clock is only read.
  DovRecord MakeRecord(DaId da, int64_t value,
                       std::vector<DovId> preds = {}) {
    DovRecord record;
    record.id = repo_.NextDovId();
    record.owner_da = da;
    record.type = dot_;
    record.data = DesignObject(dot_);
    record.data.SetAttr("value", value);
    record.predecessors = std::move(preds);
    record.created_at = clock_.Now();
    return record;
  }

  SimClock clock_;
  Repository repo_;
  DotId dot_;
};

// Each thread owns one DA and commits a chain of versions; afterwards
// every committed DOV must be visible, the per-DA creation order must
// be intact, and the counters must add up exactly.
TEST_F(ConcurrentRepositoryTest, ParallelCheckinChains) {
  constexpr int kThreads = 8;
  constexpr int kTxnsPerThread = 200;

  std::vector<std::vector<DovId>> written(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &written] {
      DaId da(t + 1);
      DovId prev;
      for (int i = 0; i < kTxnsPerThread; ++i) {
        TxnId txn = repo_.Begin();
        DovRecord record = MakeRecord(
            da, i % 1000,
            prev.valid() ? std::vector<DovId>{prev} : std::vector<DovId>{});
        DovId id = record.id;
        ASSERT_TRUE(repo_.Put(txn, std::move(record)).ok());
        ASSERT_TRUE(repo_.Commit(txn).ok());
        written[t].push_back(id);
        prev = id;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(repo_.stats().txns_begun, kThreads * kTxnsPerThread);
  EXPECT_EQ(repo_.stats().txns_committed, kThreads * kTxnsPerThread);
  EXPECT_EQ(repo_.stats().dovs_written, kThreads * kTxnsPerThread);
  for (int t = 0; t < kThreads; ++t) {
    // Creation order per DA is the thread's commit order.
    EXPECT_EQ(repo_.DovsOf(DaId(t + 1)), written[t]);
    for (DovId id : written[t]) {
      ASSERT_TRUE(repo_.Contains(id));
    }
    // The derivation chain survived: every non-root has its predecessor.
    const DerivationGraph& graph = repo_.graph(DaId(t + 1));
    EXPECT_EQ(graph.Roots(), std::vector<DovId>{written[t].front()});
    EXPECT_EQ(graph.Leaves(), std::vector<DovId>{written[t].back()});
  }
}

// Meta-store traffic (CM/DM state) mixed with aborts from many threads.
TEST_F(ConcurrentRepositoryTest, ParallelMetaWritesAndAborts) {
  constexpr int kThreads = 8;
  constexpr int kKeysPerThread = 100;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t] {
      for (int i = 0; i < kKeysPerThread; ++i) {
        std::string key =
            "da/" + std::to_string(t) + "/k" + std::to_string(i);
        TxnId txn = repo_.Begin();
        ASSERT_TRUE(repo_.PutMeta(txn, key, std::to_string(i)).ok());
        ASSERT_TRUE(repo_.Commit(txn).ok());
        // And one aborted transaction that must leave no trace.
        TxnId doomed = repo_.Begin();
        ASSERT_TRUE(repo_.PutMeta(doomed, key, "garbage").ok());
        ASSERT_TRUE(repo_.Abort(doomed).ok());
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(repo_.stats().txns_aborted, kThreads * kKeysPerThread);
  for (int t = 0; t < kThreads; ++t) {
    std::string prefix = "da/" + std::to_string(t) + "/";
    EXPECT_EQ(repo_.MetaKeysWithPrefix(prefix).size(), size_t{kKeysPerThread});
    for (int i = 0; i < kKeysPerThread; ++i) {
      auto value = repo_.GetMeta(prefix + "k" + std::to_string(i));
      ASSERT_TRUE(value.ok());
      EXPECT_EQ(*value, std::to_string(i));
    }
  }
}

// Derivation-lock races: many DAs hammer the same DOV; at every moment
// at most one holds the lock, and the grant/conflict counters account
// for every attempt.
TEST(ConcurrentLockManagerTest, DerivationLockSingleWinner) {
  constexpr int kThreads = 8;
  constexpr int kAttemptsPerThread = 2000;

  txn::LockManager locks;
  const DovId hot(7);
  std::atomic<int> in_section{0};
  std::atomic<uint64_t> wins{0};
  std::atomic<uint64_t> losses{0};
  std::atomic<bool> mutual_exclusion_held{true};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      DaId da(t + 1);
      for (int i = 0; i < kAttemptsPerThread; ++i) {
        Status st = locks.AcquireDerivation(hot, da);
        if (st.ok()) {
          if (in_section.fetch_add(1) != 0) mutual_exclusion_held = false;
          if (locks.DerivationHolder(hot) != da) mutual_exclusion_held = false;
          in_section.fetch_sub(1);
          ASSERT_TRUE(locks.ReleaseDerivation(hot, da).ok());
          wins.fetch_add(1);
        } else {
          ASSERT_TRUE(st.IsLockConflict());
          losses.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_TRUE(mutual_exclusion_held);
  EXPECT_EQ(wins + losses, uint64_t{kThreads} * kAttemptsPerThread);
  EXPECT_GT(wins.load(), 0u);
  txn::LockStats stats = locks.stats();
  EXPECT_EQ(stats.derivation_locks_taken, wins.load());
  EXPECT_EQ(stats.derivation_conflicts, losses.load());
  EXPECT_FALSE(locks.DerivationHolder(hot).valid());
}

// Scope-lock table under concurrent ownership changes and visibility
// queries from reader threads.
TEST(ConcurrentLockManagerTest, ScopeOwnershipAndUsageReads) {
  constexpr int kThreads = 4;
  constexpr int kDovsPerThread = 500;

  txn::LockManager locks;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      DaId da(t + 1);
      DaId peer((t + 1) % kThreads + 1);
      for (int i = 0; i < kDovsPerThread; ++i) {
        DovId dov(static_cast<uint64_t>(t) * kDovsPerThread + i + 1);
        locks.SetScopeOwner(dov, da);
        locks.GrantUsageRead(dov, peer);
        ASSERT_TRUE(locks.CanRead(da, dov));
        ASSERT_TRUE(locks.CanRead(peer, dov));
        locks.RevokeUsageRead(dov, peer);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(locks.OwnedBy(DaId(t + 1)).size(), size_t{kDovsPerThread});
  }
}

// A server crash lands in the middle of concurrent commit traffic, with
// checkpoints racing the writers for good measure. After recovery,
// every transaction whose Commit() returned OK must be durable in full
// (multi-record transactions are atomic), and nothing else survives.
TEST_F(ConcurrentRepositoryTest, CrashMidConcurrentCommitRecoversExactly) {
  constexpr int kThreads = 6;
  constexpr int kRecordsPerTxn = 3;

  struct CommittedTxn {
    std::vector<DovId> ids;
    int64_t value;
  };
  std::vector<std::vector<CommittedTxn>> durable(kThreads);
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      DaId da(t + 1);
      int64_t value = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        TxnId txn = repo_.Begin();
        CommittedTxn entry;
        entry.value = value % 1000;
        bool put_ok = true;
        for (int r = 0; r < kRecordsPerTxn; ++r) {
          DovRecord record = MakeRecord(da, entry.value);
          entry.ids.push_back(record.id);
          // After the crash wipes active transactions, Put/Commit
          // return NotFound; the transaction simply did not happen.
          if (!repo_.Put(txn, std::move(record)).ok()) {
            put_ok = false;
            break;
          }
        }
        if (put_ok && repo_.Commit(txn).ok()) {
          durable[t].push_back(std::move(entry));
        }
        ++value;
      }
    });
  }

  // Let traffic build, checkpoint twice mid-flight, then pull the plug
  // while commits are in progress. Crash() waits for in-flight shared
  // holders, so a commit is either fully on the WAL or absent.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  repo_.Checkpoint();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  repo_.Checkpoint();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  repo_.Crash();
  stop = true;
  for (auto& thread : threads) thread.join();

  ASSERT_TRUE(repo_.Recover().ok());

  size_t total_committed = 0;
  for (int t = 0; t < kThreads; ++t) {
    total_committed += durable[t].size();
    for (const CommittedTxn& entry : durable[t]) {
      ASSERT_EQ(entry.ids.size(), size_t{kRecordsPerTxn});
      for (DovId id : entry.ids) {
        auto record = repo_.Get(id);
        ASSERT_TRUE(record.ok()) << id.ToString() << " lost after recovery";
        EXPECT_EQ((*record).owner_da, DaId(t + 1));
        EXPECT_EQ((*record).data.GetAttr("value").value().as_int(),
                  entry.value);
      }
    }
    // Whole-transaction atomicity: the DA's recovered DOV count is a
    // multiple of the transaction size, and at least all OK commits.
    size_t recovered = repo_.DovsOf(DaId(t + 1)).size();
    EXPECT_EQ(recovered % kRecordsPerTxn, 0u);
    EXPECT_GE(recovered, durable[t].size() * kRecordsPerTxn);
  }
  ASSERT_GT(total_committed, 0u) << "no transaction committed before crash";

  // Fresh ids after recovery must not collide with recovered DOVs.
  TxnId txn = repo_.Begin();
  DovRecord fresh = MakeRecord(DaId(1), 1);
  ASSERT_FALSE(repo_.Contains(fresh.id));
  ASSERT_TRUE(repo_.Put(txn, fresh).ok());
  ASSERT_TRUE(repo_.Commit(txn).ok());
}

// Readers race writers: Get/Contains/DovsOf/GetMeta run against live
// commit traffic without torn reads (every observed record is fully
// formed).
TEST_F(ConcurrentRepositoryTest, ReadersRaceWriters) {
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kTxnsPerWriter = 300;

  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      DaId da(t + 1);
      for (int i = 0; i < kTxnsPerWriter; ++i) {
        TxnId txn = repo_.Begin();
        ASSERT_TRUE(repo_.Put(txn, MakeRecord(da, 7)).ok());
        ASSERT_TRUE(repo_.Commit(txn).ok());
      }
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      DaId da(t % kWriters + 1);
      uint64_t probes = 0;
      while (!done.load(std::memory_order_relaxed)) {
        for (DovId id : repo_.DovsOf(da)) {
          auto record = repo_.Get(id);
          ASSERT_TRUE(record.ok());
          // A torn record would fail schema validation or have the
          // wrong owner; both must be impossible.
          EXPECT_EQ((*record).owner_da, da);
          EXPECT_EQ((*record).data.GetAttr("value").value().as_int(), 7);
          ++probes;
        }
      }
      (void)probes;
    });
  }
  for (int t = 0; t < kWriters; ++t) threads[t].join();
  done = true;
  for (int t = kWriters; t < kWriters + kReaders; ++t) threads[t].join();

  EXPECT_EQ(repo_.stats().dovs_written, kWriters * kTxnsPerWriter);
  // Group commit really grouped: exactly one flush per commit, while
  // each commit batch carries three records (BEGIN, WRITE_DOV, COMMIT).
  EXPECT_EQ(repo_.wal().flushes(), uint64_t{kWriters} * kTxnsPerWriter);
  EXPECT_EQ(repo_.wal().total_appended(),
            uint64_t{3} * kWriters * kTxnsPerWriter);
}

}  // namespace
}  // namespace concord::storage
