// Tests for the concurrency-discipline layer (common/sync.h):
//
//  - the annotated Mutex/MutexLock/CondVar wrappers behave like the
//    std primitives they wrap,
//  - ScopedThreadRole tags nest and restore,
//  - the ThreadRole runtime asserts abort on the two violations the
//    partition-ownership rules forbid (wrong-partition touch,
//    submit-and-wait from executor context) — death tests, skipped
//    when CONCORD_THREAD_ASSERTS is compiled out,
//  - the stats() accessors fixed in this change return snapshots by
//    value, never references into mutex-guarded live state.

#include <gtest/gtest.h>

#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/sync.h"
#include "cooperation/cooperation_manager.h"
#include "txn/client_tm.h"
#include "txn/partition.h"
#include "workflow/design_manager.h"

namespace concord {
namespace {

// --- Annotated wrapper basics ------------------------------------------------

class Counter {
 public:
  void Add(int n) {
    MutexLock lock(&mu_);
    value_ += n;
  }
  int value() const {
    MutexLock lock(&mu_);
    return value_;
  }

 private:
  mutable Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

TEST(SyncTest, MutexLockSerializesWriters) {
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 1000; ++i) counter.Add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.value(), 4000);
}

TEST(SyncTest, CondVarWaitSeesSignaledPredicate) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread signaler([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyAll();
  });
  {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    EXPECT_TRUE(ready);
  }
  signaler.join();
}

TEST(SyncTest, RecursiveMutexReenters) {
  RecursiveMutex mu;
  RecursiveMutexLock outer(&mu);
  {
    RecursiveMutexLock inner(&mu);  // must not deadlock
  }
}

// --- ScopedThreadRole --------------------------------------------------------

TEST(ThreadRoleTest, DefaultsToGeneral) {
  EXPECT_EQ(CurrentThreadRole(), ThreadRole::kGeneral);
  EXPECT_EQ(CurrentThreadPartition(), -1);
}

TEST(ThreadRoleTest, ScopedRoleNestsAndRestores) {
  {
    ScopedThreadRole outer(ThreadRole::kPartitionExecutor, 3);
    EXPECT_EQ(CurrentThreadRole(), ThreadRole::kPartitionExecutor);
    EXPECT_EQ(CurrentThreadPartition(), 3);
    {
      ScopedThreadRole inner(ThreadRole::kPoolExecutor);
      EXPECT_EQ(CurrentThreadRole(), ThreadRole::kPoolExecutor);
      EXPECT_EQ(CurrentThreadPartition(), -1);
    }
    EXPECT_EQ(CurrentThreadRole(), ThreadRole::kPartitionExecutor);
    EXPECT_EQ(CurrentThreadPartition(), 3);
  }
  EXPECT_EQ(CurrentThreadRole(), ThreadRole::kGeneral);
}

TEST(ThreadRoleTest, RoleIsPerThread) {
  ScopedThreadRole role(ThreadRole::kPartitionExecutor, 7);
  ThreadRole seen = ThreadRole::kPartitionExecutor;
  std::thread other([&seen] { seen = CurrentThreadRole(); });
  other.join();
  EXPECT_EQ(seen, ThreadRole::kGeneral);
}

// --- Assert semantics (non-fatal paths) --------------------------------------

TEST(ThreadRoleTest, GeneralThreadPassesPartitionAssert) {
  // K == 1 inline mode and quiescent test access run partition bodies
  // on general threads — the assert must accept that.
  CONCORD_ASSERT_ON_PARTITION(0);
  CONCORD_ASSERT_ON_PARTITION(5);
  CONCORD_ASSERT_OFF_EXECUTOR();
}

TEST(ThreadRoleTest, OwningExecutorPassesItsOwnPartition) {
  ScopedThreadRole role(ThreadRole::kPartitionExecutor, 2);
  CONCORD_ASSERT_ON_PARTITION(2);
}

TEST(ThreadRoleTest, PoolExecutorPassesBothAsserts) {
  // Pool threads own no partition slice and may submit-and-wait.
  ScopedThreadRole role(ThreadRole::kPoolExecutor);
  CONCORD_ASSERT_ON_PARTITION(0);
  CONCORD_ASSERT_OFF_EXECUTOR();
}

// --- Death tests: the violations must abort ----------------------------------

using ThreadRoleDeathTest = ::testing::Test;

TEST(ThreadRoleDeathTest, WrongPartitionTouchAborts) {
  if (!ThreadAssertsEnabled()) {
    GTEST_SKIP() << "CONCORD_THREAD_ASSERTS compiled out in this build";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ScopedThreadRole role(ThreadRole::kPartitionExecutor, 1);
  EXPECT_DEATH(CONCORD_ASSERT_ON_PARTITION(0),
               "partition-owned state touched from the wrong executor");
}

TEST(ThreadRoleDeathTest, SubmitAndWaitFromExecutorAborts) {
  if (!ThreadAssertsEnabled()) {
    GTEST_SKIP() << "CONCORD_THREAD_ASSERTS compiled out in this build";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ScopedThreadRole role(ThreadRole::kPartitionExecutor, 0);
  EXPECT_DEATH(CONCORD_ASSERT_OFF_EXECUTOR(), "submit-and-wait");
}

TEST(ThreadRoleDeathTest, EngineRunFromExecutorTaskAborts) {
  if (!ThreadAssertsEnabled()) {
    GTEST_SKIP() << "CONCORD_THREAD_ASSERTS compiled out in this build";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The real deadlock shape: a task running ON partition 0 does a
  // synchronous Run against partition 1. PartitionEngine::Run asserts
  // off-executor before blocking, so the child must abort.
  EXPECT_DEATH(
      {
        txn::PartitionEngine engine(2);
        engine.Post(0, [&engine] { (void)engine.Run(1, [] { return 1; }); })
            .get();
      },
      "submit-and-wait");
}

TEST(ThreadRoleDeathTest, EngineRunFromGeneralThreadIsFine) {
  txn::PartitionEngine engine(2);
  EXPECT_EQ(engine.Run(1, [] { return 41 + 1; }), 42);
  engine.Drain();
}

// --- Stats accessors are snapshots, not references ---------------------------
//
// Regression guard for the const-ref races fixed alongside the
// annotations: a `const Stats&` return handed callers a reference into
// mutex-guarded live state, read without the mutex. By-value returns
// make the copy under the lock instead.

template <typename T>
constexpr bool kReturnsByValue =
    !std::is_reference_v<T> && !std::is_pointer_v<T>;

static_assert(
    kReturnsByValue<decltype(std::declval<const cooperation::CooperationManager&>()
                                 .stats())>,
    "CooperationManager::stats() must snapshot by value");
static_assert(
    kReturnsByValue<decltype(std::declval<const txn::ClientTm&>().stats())>,
    "ClientTm::stats() must snapshot by value");
static_assert(
    kReturnsByValue<decltype(std::declval<const txn::ClientTm&>()
                                 .two_pc_stats())>,
    "ClientTm::two_pc_stats() must snapshot by value");
static_assert(
    kReturnsByValue<decltype(std::declval<const workflow::DesignManager&>()
                                 .stats())>,
    "DesignManager::stats() must snapshot by value");
static_assert(
    kReturnsByValue<decltype(std::declval<const workflow::DesignManager&>()
                                 .log())>,
    "DesignManager::log() must snapshot by value");

TEST(StatsSnapshotTest, DesignManagerStatsRacesHandleEvent) {
  // Hammer stats()/log() against HandleEvent from another thread; under
  // the TSAN leg this is the regression test for the unguarded-ref read.
  SimClock clock;
  workflow::DesignManager dm(DaId(1), workflow::Script{}, nullptr, &clock);
  std::thread mutator([&dm] {
    for (int i = 0; i < 500; ++i) {
      workflow::Event event;
      event.type = "Noop";
      (void)dm.HandleEvent(event);
    }
  });
  uint64_t observed = 0;
  for (int i = 0; i < 500; ++i) {
    observed = std::max(observed, dm.stats().events_handled);
    (void)dm.log();
  }
  mutator.join();
  EXPECT_EQ(dm.stats().events_handled, 500u);
  EXPECT_LE(observed, 500u);
}

}  // namespace
}  // namespace concord
