#include <gtest/gtest.h>

#include "rpc/network.h"
#include "rpc/transactional_rpc.h"
#include "rpc/two_phase_commit.h"

namespace concord::rpc {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : network_(&clock_, 7) {
    server_ = network_.AddNode("server");
    ws_ = network_.AddNode("ws1");
  }
  SimClock clock_;
  Network network_;
  NodeId server_;
  NodeId ws_;
};

TEST_F(NetworkTest, SendAdvancesClockByLatency) {
  SimTime before = clock_.Now();
  ASSERT_TRUE(network_.Send(ws_, server_).ok());
  EXPECT_EQ(clock_.Now() - before, network_.lan_latency());
  before = clock_.Now();
  ASSERT_TRUE(network_.Send(ws_, ws_).ok());
  EXPECT_EQ(clock_.Now() - before, network_.local_latency());
}

TEST_F(NetworkTest, DownNodesRejectTraffic) {
  network_.SetNodeUp(server_, false);
  EXPECT_TRUE(network_.Send(ws_, server_).IsUnavailable());
  EXPECT_TRUE(network_.Send(server_, ws_).IsUnavailable());
  network_.SetNodeUp(server_, true);
  EXPECT_TRUE(network_.Send(ws_, server_).ok());
  EXPECT_EQ(network_.stats().messages_rejected_node_down, 2u);
}

TEST_F(NetworkTest, LossIsSeededAndCounted) {
  network_.set_loss_probability(0.5);
  int ok = 0;
  int lost = 0;
  for (int i = 0; i < 200; ++i) {
    if (network_.Send(ws_, server_).ok()) {
      ++ok;
    } else {
      ++lost;
    }
  }
  EXPECT_GT(ok, 50);
  EXPECT_GT(lost, 50);
  EXPECT_EQ(network_.stats().messages_lost, static_cast<uint64_t>(lost));
}

TEST_F(NetworkTest, IntraNodeMessagesNeverLost) {
  network_.set_loss_probability(1.0);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(network_.Send(ws_, ws_).ok());
  }
}

TEST_F(NetworkTest, NodeNames) {
  EXPECT_EQ(*network_.NodeName(server_), "server");
  EXPECT_FALSE(network_.NodeName(NodeId(99)).ok());
}

// --- TransactionalRpc ------------------------------------------------------

class RpcFixture : public ::testing::Test {
 protected:
  RpcFixture() : network_(&clock_, 7), rpc_(&network_) {
    server_ = network_.AddNode("server");
    ws_ = network_.AddNode("ws1");
  }
  SimClock clock_;
  Network network_;
  TransactionalRpc rpc_;
  NodeId server_;
  NodeId ws_;
};

TEST_F(RpcFixture, CallExecutesHandler) {
  rpc_.RegisterHandler(server_, "echo", [](const std::string& req) {
    return Result<std::string>("echo:" + req);
  });
  auto reply = rpc_.Call(ws_, server_, "echo", "hi");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "echo:hi");
}

TEST_F(RpcFixture, UnknownMethodFails) {
  EXPECT_TRUE(rpc_.Call(ws_, server_, "nope", "").status().IsNotFound());
}

TEST_F(RpcFixture, RetriesOverMessageLossExactlyOnce) {
  int executions = 0;
  rpc_.RegisterHandler(server_, "inc", [&](const std::string&) {
    ++executions;
    return Result<std::string>("done");
  });
  network_.set_loss_probability(0.4);
  int successes = 0;
  for (int i = 0; i < 50; ++i) {
    if (rpc_.Call(ws_, server_, "inc", "").ok()) ++successes;
  }
  // At-most-once: each call id executes at most once, even across
  // retries (lost replies re-send the cached response). A call may
  // execute yet still fail if every reply is lost, so
  // successes <= executions <= calls.
  EXPECT_LE(successes, executions);
  EXPECT_LE(executions, 50);
  EXPECT_GT(rpc_.stats().retries, 0u);
  EXPECT_GT(rpc_.stats().duplicate_suppressed, 0u);
}

TEST_F(RpcFixture, CrashedCalleeFailsFast) {
  rpc_.RegisterHandler(server_, "x",
                       [](const std::string&) { return Result<std::string>(""); });
  network_.SetNodeUp(server_, false);
  EXPECT_TRUE(rpc_.Call(ws_, server_, "x", "").status().IsUnavailable());
  EXPECT_EQ(rpc_.stats().failures, 1u);
}

TEST_F(RpcFixture, ApplicationErrorDeliveredWithoutRetry) {
  int executions = 0;
  rpc_.RegisterHandler(server_, "fail", [&](const std::string&) {
    ++executions;
    return Result<std::string>(Status::Aborted("app error"));
  });
  auto reply = rpc_.Call(ws_, server_, "fail", "");
  EXPECT_TRUE(reply.status().IsAborted());
  EXPECT_EQ(executions, 1);
}

TEST_F(RpcFixture, ClearNodeStateDropsDedup) {
  rpc_.RegisterHandler(server_, "y",
                       [](const std::string&) { return Result<std::string>("ok"); });
  rpc_.Call(ws_, server_, "y", "").ok();
  rpc_.ClearNodeState(server_);  // simulated crash wipes dedup table
  EXPECT_TRUE(rpc_.Call(ws_, server_, "y", "").ok());
}

// --- TwoPhaseCommit --------------------------------------------------------

class RecordingParticipant : public TwoPcParticipant {
 public:
  RecordingParticipant(NodeId node, bool vote, bool read_only = false)
      : node_(node), vote_(vote), read_only_(read_only) {}

  NodeId node() const override { return node_; }
  bool Prepare(TxnId) override {
    ++prepares;
    return vote_;
  }
  void Commit(TxnId) override { ++commits; }
  void Abort(TxnId) override { ++aborts; }
  bool IsReadOnly(TxnId) const override { return read_only_; }

  int prepares = 0;
  int commits = 0;
  int aborts = 0;

 private:
  NodeId node_;
  bool vote_;
  bool read_only_;
};

class TwoPcTest : public ::testing::Test {
 protected:
  TwoPcTest() : network_(&clock_, 7) {
    coord_node_ = network_.AddNode("server");
    a_node_ = network_.AddNode("a");
    b_node_ = network_.AddNode("b");
  }
  SimClock clock_;
  Network network_;
  NodeId coord_node_;
  NodeId a_node_;
  NodeId b_node_;
};

TEST_F(TwoPcTest, AllYesCommits) {
  TwoPhaseCommitCoordinator coord(&network_, coord_node_);
  RecordingParticipant a(a_node_, true);
  RecordingParticipant b(b_node_, true);
  auto committed = coord.Execute(TxnId(1), {&a, &b});
  ASSERT_TRUE(committed.ok());
  EXPECT_TRUE(*committed);
  EXPECT_EQ(a.commits, 1);
  EXPECT_EQ(b.commits, 1);
  EXPECT_EQ(coord.stats().committed, 1u);
}

TEST_F(TwoPcTest, AnyNoAborts) {
  TwoPhaseCommitCoordinator coord(&network_, coord_node_);
  RecordingParticipant a(a_node_, true);
  RecordingParticipant b(b_node_, false);
  auto committed = coord.Execute(TxnId(1), {&a, &b});
  ASSERT_TRUE(committed.ok());
  EXPECT_FALSE(*committed);
  EXPECT_EQ(a.aborts, 1);
  EXPECT_EQ(b.aborts, 1);
  EXPECT_EQ(a.commits + b.commits, 0);
}

TEST_F(TwoPcTest, UnreachableParticipantAborts) {
  TwoPhaseCommitCoordinator coord(&network_, coord_node_);
  RecordingParticipant a(a_node_, true);
  RecordingParticipant b(b_node_, true);
  network_.SetNodeUp(b_node_, false);
  auto committed = coord.Execute(TxnId(1), {&a, &b});
  ASSERT_TRUE(committed.ok());
  EXPECT_FALSE(*committed);
}

TEST_F(TwoPcTest, ReadOnlyOptimizationSkipsPhaseTwo) {
  TwoPhaseCommitCoordinator coord(&network_, coord_node_);
  RecordingParticipant writer(a_node_, true);
  RecordingParticipant reader(b_node_, true, /*read_only=*/true);
  auto committed = coord.Execute(TxnId(1), {&writer, &reader});
  ASSERT_TRUE(*committed);
  EXPECT_EQ(reader.prepares, 0);  // vote handled by the transport round
  EXPECT_EQ(reader.commits, 0);
  EXPECT_EQ(writer.commits, 1);
  EXPECT_EQ(coord.stats().read_only_skips, 1u);
}

TEST_F(TwoPcTest, LocalOptimizationAvoidsLanMessages) {
  TwoPhaseCommitCoordinator coord(&network_, coord_node_);
  RecordingParticipant local(coord_node_, true);  // co-located
  network_.ResetStats();
  auto committed = coord.Execute(TxnId(1), {&local});
  ASSERT_TRUE(*committed);
  EXPECT_EQ(coord.stats().messages, 0u);  // no LAN traffic
  EXPECT_GT(coord.stats().local_fast_paths, 0u);
}

TEST_F(TwoPcTest, DisablingLocalOptimizationCostsMessages) {
  TwoPhaseCommitCoordinator coord(&network_, coord_node_);
  coord.set_local_optimization(false);
  RecordingParticipant local(coord_node_, true);
  auto committed = coord.Execute(TxnId(1), {&local});
  ASSERT_TRUE(*committed);
  EXPECT_GT(coord.stats().messages, 0u);
}

TEST_F(TwoPcTest, MessageCountMatchesProtocolShape) {
  TwoPhaseCommitCoordinator coord(&network_, coord_node_);
  RecordingParticipant a(a_node_, true);
  RecordingParticipant b(b_node_, true);
  coord.Execute(TxnId(1), {&a, &b}).ok();
  // 2 participants x 2 phases x (request + reply) = 8 messages.
  EXPECT_EQ(coord.stats().messages, 8u);
}

}  // namespace
}  // namespace concord::rpc
