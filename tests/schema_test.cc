#include <gtest/gtest.h>

#include "storage/object.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace concord::storage {
namespace {

// --- AttrValue -------------------------------------------------------

TEST(AttrValueTest, TypeDiscrimination) {
  EXPECT_TRUE(AttrValue(int64_t{3}).is_int());
  EXPECT_TRUE(AttrValue(3.5).is_double());
  EXPECT_TRUE(AttrValue("x").is_string());
  EXPECT_TRUE(AttrValue(true).is_bool());
  EXPECT_EQ(AttrValue(3.5).type(), AttrType::kDouble);
}

TEST(AttrValueTest, NumericPromotesInt) {
  EXPECT_DOUBLE_EQ(*AttrValue(int64_t{7}).AsNumeric(), 7.0);
  EXPECT_DOUBLE_EQ(*AttrValue(2.25).AsNumeric(), 2.25);
  EXPECT_FALSE(AttrValue("str").AsNumeric().ok());
  EXPECT_FALSE(AttrValue(true).AsNumeric().ok());
}

TEST(AttrValueTest, EqualityIsTypeAndValue) {
  EXPECT_EQ(AttrValue(int64_t{1}), AttrValue(int64_t{1}));
  EXPECT_FALSE(AttrValue(int64_t{1}) == AttrValue(1.0));
  EXPECT_EQ(AttrValue("a"), AttrValue("a"));
}

TEST(AttrValueTest, ToString) {
  EXPECT_EQ(AttrValue(int64_t{5}).ToString(), "5");
  EXPECT_EQ(AttrValue("hi").ToString(), "hi");
  EXPECT_EQ(AttrValue(false).ToString(), "false");
}

// --- DesignObject ----------------------------------------------------

TEST(DesignObjectTest, AttrRoundtrip) {
  DesignObject obj(DotId(1));
  obj.SetAttr("area", 12.5);
  EXPECT_TRUE(obj.HasAttr("area"));
  EXPECT_DOUBLE_EQ(*obj.GetNumeric("area"), 12.5);
  EXPECT_FALSE(obj.GetAttr("missing").ok());
  obj.SetAttr("area", 13.0);  // overwrite
  EXPECT_DOUBLE_EQ(*obj.GetNumeric("area"), 13.0);
}

TEST(DesignObjectTest, ChildrenAndTreeSize) {
  DesignObject chip(DotId(1));
  DesignObject module(DotId(2));
  module.AddChild(DesignObject(DotId(3)));
  chip.AddChild(module);
  chip.AddChild(DesignObject(DotId(2)));
  EXPECT_EQ(chip.TreeSize(), 4u);
  EXPECT_EQ(chip.CountChildrenOfType(DotId(2)), 2);
  EXPECT_EQ(chip.CountChildrenOfType(DotId(3)), 0);
}

TEST(DesignObjectTest, ContentHashDetectsChanges) {
  DesignObject a(DotId(1));
  a.SetAttr("x", int64_t{1});
  DesignObject b = a;
  EXPECT_EQ(a.ContentHash(), b.ContentHash());
  b.SetAttr("x", int64_t{2});
  EXPECT_NE(a.ContentHash(), b.ContentHash());
  DesignObject c = a;
  c.AddChild(DesignObject(DotId(2)));
  EXPECT_NE(a.ContentHash(), c.ContentHash());
}

// --- SchemaCatalog ----------------------------------------------------

class SchemaTest : public ::testing::Test {
 protected:
  SchemaTest() {
    stdcell_ = catalog_.DefineType("stdcell");
    block_ = catalog_.DefineType("block");
    module_ = catalog_.DefineType("module");
    chip_ = catalog_.DefineType("chip");
    block_->AddPart({stdcell_->id(), 0, 100});
    module_->AddPart({block_->id(), 1, 8});
    chip_->AddPart({module_->id(), 0, 16});
    chip_->AddAttr({"name", AttrType::kString, true, {}, {}});
    chip_->AddAttr({"area", AttrType::kDouble, false, 0.0, 1e6});
    module_->AddAttr({"name", AttrType::kString, true, {}, {}});
    block_->AddAttr({"name", AttrType::kString, false, {}, {}});
    stdcell_->AddAttr({"name", AttrType::kString, false, {}, {}});
  }

  SchemaCatalog catalog_;
  DesignObjectType* stdcell_;
  DesignObjectType* block_;
  DesignObjectType* module_;
  DesignObjectType* chip_;
};

TEST_F(SchemaTest, LookupByIdAndName) {
  EXPECT_EQ((*catalog_.GetType(chip_->id()))->name(), "chip");
  EXPECT_EQ((*catalog_.GetTypeByName("module"))->id(), module_->id());
  EXPECT_FALSE(catalog_.GetType(DotId(999)).ok());
  EXPECT_FALSE(catalog_.GetTypeByName("nonexistent").ok());
  EXPECT_EQ(catalog_.size(), 4u);
}

TEST_F(SchemaTest, IsPartOfDirect) {
  EXPECT_TRUE(catalog_.IsPartOf(module_->id(), chip_->id()));
  EXPECT_TRUE(catalog_.IsPartOf(block_->id(), module_->id()));
}

TEST_F(SchemaTest, IsPartOfTransitive) {
  EXPECT_TRUE(catalog_.IsPartOf(stdcell_->id(), chip_->id()));
  EXPECT_TRUE(catalog_.IsPartOf(block_->id(), chip_->id()));
}

TEST_F(SchemaTest, IsPartOfReflexive) {
  EXPECT_TRUE(catalog_.IsPartOf(chip_->id(), chip_->id()));
}

TEST_F(SchemaTest, IsPartOfRejectsReverse) {
  EXPECT_FALSE(catalog_.IsPartOf(chip_->id(), module_->id()));
  EXPECT_FALSE(catalog_.IsPartOf(module_->id(), stdcell_->id()));
}

TEST_F(SchemaTest, ValidateAcceptsWellFormedObject) {
  DesignObject chip(chip_->id());
  chip.SetAttr("name", "c1");
  chip.SetAttr("area", 100.0);
  DesignObject module(module_->id());
  module.SetAttr("name", "m1");
  DesignObject block(block_->id());
  module.AddChild(block);
  chip.AddChild(module);
  EXPECT_TRUE(catalog_.Validate(chip).ok());
}

TEST_F(SchemaTest, ValidateRejectsMissingRequiredAttr) {
  DesignObject chip(chip_->id());
  Status st = catalog_.Validate(chip);
  EXPECT_TRUE(st.IsConstraintViolation());
  EXPECT_NE(st.message().find("name"), std::string::npos);
}

TEST_F(SchemaTest, ValidateRejectsWrongType) {
  DesignObject chip(chip_->id());
  chip.SetAttr("name", int64_t{5});
  EXPECT_TRUE(catalog_.Validate(chip).IsConstraintViolation());
}

TEST_F(SchemaTest, ValidateAllowsIntWhereDoubleDeclared) {
  DesignObject chip(chip_->id());
  chip.SetAttr("name", "c");
  chip.SetAttr("area", int64_t{50});
  EXPECT_TRUE(catalog_.Validate(chip).ok());
}

TEST_F(SchemaTest, ValidateEnforcesNumericBounds) {
  DesignObject chip(chip_->id());
  chip.SetAttr("name", "c");
  chip.SetAttr("area", -1.0);
  EXPECT_TRUE(catalog_.Validate(chip).IsConstraintViolation());
  chip.SetAttr("area", 2e6);
  EXPECT_TRUE(catalog_.Validate(chip).IsConstraintViolation());
}

TEST_F(SchemaTest, ValidateRejectsUndeclaredAttr) {
  DesignObject chip(chip_->id());
  chip.SetAttr("name", "c");
  chip.SetAttr("bogus", 1.0);
  EXPECT_TRUE(catalog_.Validate(chip).IsConstraintViolation());
}

TEST_F(SchemaTest, ValidateEnforcesPartMultiplicity) {
  DesignObject module(module_->id());
  module.SetAttr("name", "m");
  // module requires 1..8 blocks; zero given.
  EXPECT_TRUE(catalog_.Validate(module).IsConstraintViolation());
  for (int i = 0; i < 9; ++i) module.AddChild(DesignObject(block_->id()));
  EXPECT_TRUE(catalog_.Validate(module).IsConstraintViolation());
}

TEST_F(SchemaTest, ValidateRejectsUndeclaredComponentType) {
  DesignObject chip(chip_->id());
  chip.SetAttr("name", "c");
  chip.AddChild(DesignObject(stdcell_->id()));  // stdcell not a direct part
  EXPECT_TRUE(catalog_.Validate(chip).IsConstraintViolation());
}

TEST_F(SchemaTest, ValidateRecursesIntoChildren) {
  DesignObject chip(chip_->id());
  chip.SetAttr("name", "c");
  DesignObject module(module_->id());  // missing required name
  module.AddChild(DesignObject(block_->id()));
  chip.AddChild(module);
  EXPECT_TRUE(catalog_.Validate(chip).IsConstraintViolation());
}

TEST_F(SchemaTest, FindAttr) {
  EXPECT_NE(chip_->FindAttr("area"), nullptr);
  EXPECT_EQ(chip_->FindAttr("nonexistent"), nullptr);
}

}  // namespace
}  // namespace concord::storage
