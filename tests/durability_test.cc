// Restart durability: the repository's stable storage actually lives
// on disk. Unlike the simulated Crash()/Recover() pair (which models a
// server crash inside one process), these suites destroy the whole
// Repository object and rebuild it over the same directory — the state
// that comes back is exactly what the WAL segments and the checkpoint
// snapshot carried through the "restart".

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "storage/repository.h"
#include "storage/wal.h"
#include "storage/wal_codec.h"

namespace concord::storage {
namespace {

namespace fs = std::filesystem;

class DurabilityTest : public ::testing::Test {
 protected:
  DurabilityTest() {
    char tmpl[] = "/tmp/concord_durability_XXXXXX";
    const char* dir = ::mkdtemp(tmpl);
    if (dir == nullptr) {
      ADD_FAILURE() << "mkdtemp failed: " << std::strerror(errno);
      std::abort();
    }
    dir_ = dir;
  }

  ~DurabilityTest() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  /// A fresh repository over dir_ with the test schema registered (the
  /// schema catalog is code, not data — every incarnation registers it
  /// before Open, like an application booting).
  std::unique_ptr<Repository> MakeRepo() {
    auto repo = std::make_unique<Repository>(&clock_);
    DesignObjectType* part = repo->schema().DefineType("part");
    part->AddAttr({"value", AttrType::kInt, true, 0.0, 1e9});
    part_dot_ = part->id();
    DesignObjectType* type = repo->schema().DefineType("thing");
    type->AddAttr({"value", AttrType::kInt, true, 0.0, 1e9});
    type->AddPart({part_dot_, 0, 100});
    dot_ = type->id();
    return repo;
  }

  DovRecord MakeRecord(Repository& repo, DaId da, int64_t value,
                       std::vector<DovId> preds = {}) {
    DovRecord record;
    record.id = repo.NextDovId();
    record.owner_da = da;
    record.type = dot_;
    record.data = DesignObject(dot_);
    record.data.SetAttr("value", value);
    // A nested child exercises the recursive DesignObject codec.
    DesignObject child(part_dot_);
    child.SetAttr("value", value * 2);
    record.data.AddChild(std::move(child));
    record.predecessors = std::move(preds);
    record.created_at = clock_.Now();
    return record;
  }

  DovId CommitOne(Repository& repo, DaId da, int64_t value,
                  std::vector<DovId> preds = {}) {
    TxnId txn = repo.Begin();
    DovRecord record = MakeRecord(repo, da, value, std::move(preds));
    DovId id = record.id;
    EXPECT_TRUE(repo.Put(txn, std::move(record)).ok());
    EXPECT_TRUE(repo.Commit(txn).ok());
    return id;
  }

  std::string WalSegmentPath(int index = 0) {
    std::vector<std::string> segments;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      std::string name = entry.path().filename().string();
      if (name.rfind("wal-", 0) == 0) segments.push_back(entry.path());
    }
    std::sort(segments.begin(), segments.end());
    EXPECT_LT(static_cast<size_t>(index), segments.size());
    return segments[static_cast<size_t>(index)];
  }

  SimClock clock_;
  std::string dir_;
  DotId dot_;
  DotId part_dot_;
};

// --- Round trips ---------------------------------------------------------

TEST(WalCodecTest, WalRecordRoundTrip) {
  DovRecord dov;
  dov.id = DovId(7);
  dov.owner_da = DaId(3);
  dov.created_by = DopId(11);
  dov.type = DotId(2);
  dov.data = DesignObject(DotId(2));
  dov.data.SetAttr("i", int64_t{42});
  dov.data.SetAttr("d", 2.5);
  dov.data.SetAttr("s", std::string("hello"));
  dov.data.SetAttr("b", true);
  DesignObject child(DotId(4));
  child.SetAttr("leaf", std::string("x"));
  dov.data.AddChild(child).AddChild(DesignObject(DotId(5)));
  dov.predecessors = {DovId(1), DovId(2)};
  dov.created_at = 12345;
  dov.propagated = true;
  dov.final_dov = true;

  WalRecord record{WalRecord::Type::kWriteDov, TxnId(9), dov, "key", "value"};
  Result<WalRecord> decoded = DecodeWalRecord(EncodeWalRecord(record));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, WalRecord::Type::kWriteDov);
  EXPECT_EQ(decoded->txn, TxnId(9));
  EXPECT_EQ(decoded->meta_key, "key");
  EXPECT_EQ(decoded->meta_value, "value");
  ASSERT_TRUE(decoded->dov.has_value());
  EXPECT_EQ(decoded->dov->id, DovId(7));
  EXPECT_EQ(decoded->dov->predecessors, dov.predecessors);
  EXPECT_TRUE(decoded->dov->propagated);
  EXPECT_FALSE(decoded->dov->invalidated);
  EXPECT_TRUE(decoded->dov->final_dov);
  EXPECT_EQ(decoded->dov->data.ContentHash(), dov.data.ContentHash());
}

TEST(WalCodecTest, DecodeRejectsCorruptPayload) {
  WalRecord record{WalRecord::Type::kCommit, TxnId(1), std::nullopt, "", ""};
  std::string payload = EncodeWalRecord(record);
  payload[0] = static_cast<char>(0x7f);  // invalid type tag
  EXPECT_FALSE(DecodeWalRecord(payload).ok());
  EXPECT_FALSE(DecodeWalRecord(payload.substr(0, 3)).ok());
}

TEST(WalCodecTest, FramingDetectsTornTail) {
  std::string buf;
  AppendFramed(&buf, "first");
  AppendFramed(&buf, "second");
  buf.resize(buf.size() - 2);  // torn tail: frame cut mid-payload

  size_t pos = 0;
  std::string_view payload;
  ASSERT_EQ(ReadFramed(buf, &pos, &payload), FrameResult::kOk);
  EXPECT_EQ(payload, "first");
  EXPECT_EQ(ReadFramed(buf, &pos, &payload), FrameResult::kTorn);

  // The intact buffer reads to a clean end.
  pos = 0;
  std::string full;
  AppendFramed(&full, "first");
  AppendFramed(&full, "second");
  ASSERT_EQ(ReadFramed(full, &pos, &payload), FrameResult::kOk);
  ASSERT_EQ(ReadFramed(full, &pos, &payload), FrameResult::kOk);
  EXPECT_EQ(payload, "second");
  EXPECT_EQ(ReadFramed(full, &pos, &payload), FrameResult::kEnd);
}

TEST(WalCodecTest, SnapshotRoundTrip) {
  RepositorySnapshot snapshot;
  snapshot.last_dov_id = 17;
  snapshot.last_txn_id = 23;
  DovRecord dov;
  dov.id = DovId(5);
  dov.owner_da = DaId(1);
  dov.type = DotId(2);
  dov.data = DesignObject(DotId(2));
  dov.data.SetAttr("value", int64_t{1});
  snapshot.dovs[5] = dov;
  snapshot.meta["cm/state"] = "active";

  Result<std::string> encoded = EncodeSnapshot(snapshot);
  ASSERT_TRUE(encoded.ok());
  Result<RepositorySnapshot> decoded = DecodeSnapshot(*encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->last_dov_id, 17u);
  EXPECT_EQ(decoded->last_txn_id, 23u);
  ASSERT_EQ(decoded->dovs.size(), 1u);
  EXPECT_EQ(decoded->dovs.at(5).data.ContentHash(), dov.data.ContentHash());
  EXPECT_EQ(decoded->meta.at("cm/state"), "active");

  std::string corrupt = *EncodeSnapshot(snapshot);
  corrupt[corrupt.size() / 2] ^= 0x40;
  EXPECT_FALSE(DecodeSnapshot(corrupt).ok());
  EXPECT_FALSE(DecodeSnapshot("").ok());
}

// --- Restart recovery ----------------------------------------------------

TEST_F(DurabilityTest, RestartRecoversFromLogReplay) {
  uint64_t hash = 0;
  DovId a, b;
  {
    auto repo = MakeRepo();
    ASSERT_TRUE(repo->Open(dir_).ok());
    a = CommitOne(*repo, DaId(1), 10);
    b = CommitOne(*repo, DaId(1), 20, {a});
    TxnId txn = repo->Begin();
    ASSERT_TRUE(repo->PutMeta(txn, "cm/da1", "granted").ok());
    ASSERT_TRUE(repo->Commit(txn).ok());
    hash = (*repo->Get(b)).data.ContentHash();
    repo->Close();
  }

  auto reopened = MakeRepo();
  ASSERT_TRUE(reopened->Open(dir_).ok());
  ASSERT_TRUE(reopened->Contains(a));
  ASSERT_TRUE(reopened->Contains(b));
  EXPECT_EQ((*reopened->Get(b)).data.ContentHash(), hash);
  EXPECT_EQ(*reopened->GetMeta("cm/da1"), "granted");
  EXPECT_TRUE(reopened->graph(DaId(1)).IsAncestor(a, b));
  EXPECT_EQ(reopened->DovsOf(DaId(1)).size(), 2u);
  // Ids issued before the restart are never reissued.
  EXPECT_GT(reopened->NextDovId().value(), b.value());
}

TEST_F(DurabilityTest, RestartRecoversFromSnapshotPlusLog) {
  DovId before_checkpoint, after_checkpoint;
  {
    auto repo = MakeRepo();
    ASSERT_TRUE(repo->Open(dir_).ok());
    before_checkpoint = CommitOne(*repo, DaId(1), 1);
    TxnId txn = repo->Begin();
    ASSERT_TRUE(repo->PutMeta(txn, "k/snap", "v1").ok());
    ASSERT_TRUE(repo->DeleteMeta(txn, "k/none").ok());
    ASSERT_TRUE(repo->Commit(txn).ok());
    EXPECT_GT(repo->Checkpoint(), 0u);
    after_checkpoint = CommitOne(*repo, DaId(2), 2);
    repo->Close();
  }
  ASSERT_TRUE(fs::exists(dir_ + "/snapshot.bin"));

  auto reopened = MakeRepo();
  ASSERT_TRUE(reopened->Open(dir_).ok());
  EXPECT_TRUE(reopened->Contains(before_checkpoint));
  EXPECT_TRUE(reopened->Contains(after_checkpoint));
  EXPECT_EQ(*reopened->GetMeta("k/snap"), "v1");
  EXPECT_GT(reopened->NextDovId().value(), after_checkpoint.value());

  // And the reopened instance still supports the simulated crash model.
  DovId later = CommitOne(*reopened, DaId(2), 3);
  reopened->Crash();
  ASSERT_TRUE(reopened->Recover().ok());
  EXPECT_TRUE(reopened->Contains(later));
  EXPECT_TRUE(reopened->Contains(before_checkpoint));
}

TEST_F(DurabilityTest, StartupReadsEachSegmentExactlyOnce) {
  // Single-pass open: the torn-tail scan hands its decoded records
  // straight to replay, so startup pays one read+decode per segment —
  // not one for the scan plus one for ReadAll.
  size_t segments = 0;
  {
    auto repo = MakeRepo();
    WalOptions options;
    options.segment_bytes = 256;  // force several segments
    ASSERT_TRUE(repo->Open(dir_, options).ok());
    for (int i = 0; i < 12; ++i) CommitOne(*repo, DaId(1), i);
    segments = repo->wal().SegmentPaths().size();
    ASSERT_GT(segments, 2u);
    repo->Close();
  }

  auto reopened = MakeRepo();
  ASSERT_TRUE(reopened->Open(dir_).ok());
  EXPECT_EQ(reopened->DovsOf(DaId(1)).size(), 12u);
  EXPECT_EQ(reopened->wal().segment_decode_passes(), segments);

  // The simulated-crash path replays via ReadAll, which is a second,
  // separately counted pass — restart is the one that must stay single.
  reopened->Crash();
  ASSERT_TRUE(reopened->Recover().ok());
  EXPECT_EQ(reopened->wal().segment_decode_passes(), 2 * segments);
  EXPECT_EQ(reopened->DovsOf(DaId(1)).size(), 12u);
}

TEST_F(DurabilityTest, SinglePassOpenStillTruncatesTornTail) {
  DovId a;
  {
    auto repo = MakeRepo();
    ASSERT_TRUE(repo->Open(dir_).ok());
    a = CommitOne(*repo, DaId(1), 1);
    CommitOne(*repo, DaId(1), 2, {a});
    repo->Close();
  }
  // Chop the tail mid-frame: the scan must keep the valid prefix it
  // already decoded and hand exactly that to replay.
  std::string path = WalSegmentPath();
  auto size = fs::file_size(path);
  ASSERT_TRUE(fs::exists(path));
  ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(size - 3)), 0);

  auto reopened = MakeRepo();
  ASSERT_TRUE(reopened->Open(dir_).ok());
  EXPECT_EQ(reopened->wal().segment_decode_passes(), 1u);
  // The first transaction survived; the torn second one is gone whole.
  EXPECT_TRUE(reopened->Contains(a));
  EXPECT_EQ(reopened->DovsOf(DaId(1)).size(), 1u);
}

TEST_F(DurabilityTest, UncommittedTransactionGoneAfterRestart) {
  DovId committed;
  {
    auto repo = MakeRepo();
    ASSERT_TRUE(repo->Open(dir_).ok());
    committed = CommitOne(*repo, DaId(1), 1);
    TxnId open_txn = repo->Begin();
    ASSERT_TRUE(repo->Put(open_txn, MakeRecord(*repo, DaId(1), 99)).ok());
    // No commit: the buffered write must not survive the restart.
    repo->Close();
  }
  auto reopened = MakeRepo();
  ASSERT_TRUE(reopened->Open(dir_).ok());
  EXPECT_EQ(reopened->DovsOf(DaId(1)).size(), 1u);
  EXPECT_TRUE(reopened->Contains(committed));
}

// --- Torn tails and corruption -------------------------------------------

TEST_F(DurabilityTest, TornTailIsTruncatedOnReopen) {
  DovId a, b;
  {
    auto repo = MakeRepo();
    ASSERT_TRUE(repo->Open(dir_).ok());
    a = CommitOne(*repo, DaId(1), 1);
    b = CommitOne(*repo, DaId(1), 2);
    repo->Close();
  }
  // A crashed write leaves half a frame at the tail of the segment.
  std::string segment = WalSegmentPath();
  uintmax_t before = fs::file_size(segment);
  {
    std::ofstream out(segment, std::ios::binary | std::ios::app);
    const char garbage[] = "\x40\x00\x00\x00\xde\xad\xbe";
    out.write(garbage, sizeof(garbage) - 1);
  }

  auto reopened = MakeRepo();
  ASSERT_TRUE(reopened->Open(dir_).ok());
  EXPECT_TRUE(reopened->Contains(a));
  EXPECT_TRUE(reopened->Contains(b));
  EXPECT_EQ(reopened->DovsOf(DaId(1)).size(), 2u);
  // The torn bytes are physically gone, not just skipped.
  EXPECT_EQ(fs::file_size(segment), before);

  // New commits append cleanly after the truncation point.
  DovId c = CommitOne(*reopened, DaId(1), 3);
  reopened->Close();
  auto third = MakeRepo();
  ASSERT_TRUE(third->Open(dir_).ok());
  EXPECT_TRUE(third->Contains(c));
  EXPECT_EQ(third->DovsOf(DaId(1)).size(), 3u);
}

TEST_F(DurabilityTest, ZeroFilledTailIsTruncatedOnReopen) {
  DovId a;
  {
    auto repo = MakeRepo();
    ASSERT_TRUE(repo->Open(dir_).ok());
    a = CommitOne(*repo, DaId(1), 1);
    repo->Close();
  }
  // The classic torn-write artifact: the filesystem extended the file
  // but the data blocks never hit disk, so the tail reads back as
  // zeros. An all-zero header is a CRC-valid empty frame by arithmetic
  // (crc32("") == 0), which must read as "torn", not as data.
  {
    std::ofstream out(WalSegmentPath(), std::ios::binary | std::ios::app);
    std::string zeros(64, '\0');
    out.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
  }
  auto reopened = MakeRepo();
  ASSERT_TRUE(reopened->Open(dir_).ok());
  EXPECT_TRUE(reopened->Contains(a));
  CommitOne(*reopened, DaId(1), 2);
}

TEST_F(DurabilityTest, UndecodableCrcValidFrameFailsOpenLoudly) {
  {
    auto repo = MakeRepo();
    ASSERT_TRUE(repo->Open(dir_).ok());
    CommitOne(*repo, DaId(1), 1);
    repo->Close();
  }
  // A frame whose CRC verifies was durably written exactly as read —
  // provably not a torn write. If its payload no longer parses (e.g. a
  // newer binary's record type), truncating it would destroy an
  // acknowledged record, so the open must refuse.
  {
    std::string frame;
    AppendFramed(&frame, "\x7f not a wal record");
    std::ofstream out(WalSegmentPath(), std::ios::binary | std::ios::app);
    out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  }
  auto reopened = MakeRepo();
  EXPECT_FALSE(reopened->Open(dir_).ok());
}

TEST_F(DurabilityTest, TailCorruptionTruncatesFromTheDamagePoint) {
  {
    auto repo = MakeRepo();
    ASSERT_TRUE(repo->Open(dir_).ok());
    CommitOne(*repo, DaId(1), 1);
    CommitOne(*repo, DaId(1), 2);
    repo->Close();
  }
  // Flip a byte inside the second transaction's frames. Everything
  // from the first bad frame of the final segment is dropped — with
  // coalesced fsyncs, unacknowledged batches can persist out of order
  // at a crash, so frames past a hole cannot be trusted; acknowledged
  // bytes never sit past one (their fsync preceded any later write).
  std::string segment = WalSegmentPath();
  {
    std::fstream file(segment,
                      std::ios::binary | std::ios::in | std::ios::out);
    uintmax_t size = fs::file_size(segment);
    auto at = static_cast<std::streamoff>(size * 3 / 4);
    file.seekg(at);
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(at);
    byte = static_cast<char>(byte ^ 0x20);
    file.write(&byte, 1);
  }

  auto reopened = MakeRepo();
  ASSERT_TRUE(reopened->Open(dir_).ok());
  EXPECT_EQ(reopened->DovsOf(DaId(1)).size(), 1u);
}

TEST_F(DurabilityTest, FailedRecoveryPoisonsRepository) {
  auto repo = MakeRepo();
  ASSERT_TRUE(repo->Open(dir_).ok());
  CommitOne(*repo, DaId(1), 1);
  EXPECT_GT(repo->Checkpoint(), 0u);  // install a real snapshot
  CommitOne(*repo, DaId(1), 2);
  auto good_snapshot = fs::file_size(dir_ + "/snapshot.bin");

  // Stable storage vanishes out from under the running server; the
  // simulated crash then wipes the volatile image and recovery cannot
  // read the log back.
  for (const std::string& path : repo->wal().SegmentPaths()) {
    fs::remove(path);
  }
  repo->Crash();
  EXPECT_FALSE(repo->Recover().ok());
  EXPECT_TRUE(repo->Recover().IsFailedPrecondition());  // stays poisoned

  // The poisoned instance must refuse to checkpoint: its (now empty)
  // image would otherwise durably overwrite the last good snapshot and
  // truncate the log — destroying every committed DOV.
  EXPECT_EQ(repo->Checkpoint(), 0u);
  EXPECT_EQ(fs::file_size(dir_ + "/snapshot.bin"), good_snapshot);
}

TEST_F(DurabilityTest, SecondInstanceOverSameDirIsRejected) {
  auto owner = MakeRepo();
  ASSERT_TRUE(owner->Open(dir_).ok());
  CommitOne(*owner, DaId(1), 1);

  // A second repository over the live directory would interleave
  // frames in the tail segment and unlink the owner's segments at its
  // own checkpoints; the LOCK file refuses it.
  auto intruder = MakeRepo();
  Status st = intruder->Open(dir_);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsFailedPrecondition());

  // Releasing the directory hands it to the next instance.
  owner->Close();
  auto successor = MakeRepo();
  ASSERT_TRUE(successor->Open(dir_).ok());
  EXPECT_EQ(successor->DovsOf(DaId(1)).size(), 1u);
}

TEST_F(DurabilityTest, MidLogCorruptionFailsOpenLoudly) {
  {
    auto repo = MakeRepo();
    WalOptions options;
    options.segment_bytes = 256;  // force several segments
    ASSERT_TRUE(repo->Open(dir_, options).ok());
    for (int i = 0; i < 8; ++i) CommitOne(*repo, DaId(1), i);
    ASSERT_GT(repo->wal().SegmentPaths().size(), 1u);
    repo->Close();
  }
  // Damage in a non-last segment is corruption of durable data, not a
  // crash tail — later segments hold acknowledged commits, so reopen
  // must refuse rather than silently truncate history.
  std::string first_segment = WalSegmentPath(0);
  {
    std::fstream file(first_segment,
                      std::ios::binary | std::ios::in | std::ios::out);
    auto mid = static_cast<std::streamoff>(fs::file_size(first_segment) / 2);
    file.seekg(mid);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    file.seekp(mid);
    file.write(&byte, 1);
  }
  auto reopened = MakeRepo();
  EXPECT_FALSE(reopened->Open(dir_).ok());
}

TEST_F(DurabilityTest, EmptyAndForeignFilesAreHandled) {
  {
    auto repo = MakeRepo();
    ASSERT_TRUE(repo->Open(dir_).ok());
    repo->Close();
  }
  {
    // Zero-byte segment (created, nothing flushed) and unrelated files
    // must not confuse the scan. wal-000002.seg continues the sequence.
    std::ofstream(dir_ + "/wal-000002.seg");
    std::ofstream(dir_ + "/notes.txt") << "not a segment";
    std::ofstream(dir_ + "/snapshot.tmp") << "leftover tmp";
  }
  auto reopened = MakeRepo();
  ASSERT_TRUE(reopened->Open(dir_).ok());
  EXPECT_EQ(reopened->DovsOf(DaId(1)).size(), 0u);
  EXPECT_FALSE(fs::exists(dir_ + "/snapshot.tmp"));
  CommitOne(*reopened, DaId(1), 1);
  reopened->Close();

  // A non-contiguous stray segment is a hole in the sequence — some
  // segment vanished or reappeared out-of-band — and must refuse the
  // open instead of replaying across it.
  { std::ofstream(dir_ + "/wal-000099.seg"); }
  auto holey = MakeRepo();
  EXPECT_FALSE(holey->Open(dir_).ok());
}

TEST_F(DurabilityTest, CorruptSnapshotFailsOpenLoudly) {
  {
    auto repo = MakeRepo();
    ASSERT_TRUE(repo->Open(dir_).ok());
    CommitOne(*repo, DaId(1), 1);
    repo->Checkpoint();
    repo->Close();
  }
  {
    std::ofstream out(dir_ + "/snapshot.bin", std::ios::binary);
    out << "garbage, not a snapshot";
  }
  auto reopened = MakeRepo();
  Status st = reopened->Open(dir_);
  EXPECT_FALSE(st.ok());  // data loss is reported, never silent
}

TEST_F(DurabilityTest, CrashBetweenSnapshotWriteAndLogTruncation) {
  DovId a, b, c;
  {
    auto repo = MakeRepo();
    ASSERT_TRUE(repo->Open(dir_).ok());
    a = CommitOne(*repo, DaId(1), 1);
    b = CommitOne(*repo, DaId(1), 2, {a});
    // The checkpoint dies right after snapshot.bin is durably in
    // place: the log still holds everything since the previous
    // checkpoint, so replay sees records that are already reflected in
    // the snapshot.
    repo->SetCheckpointFailpointForTesting(true);
    EXPECT_EQ(repo->Checkpoint(), 0u);
    ASSERT_TRUE(fs::exists(dir_ + "/snapshot.bin"));
    c = CommitOne(*repo, DaId(1), 3, {b});
    repo->Close();
  }

  auto reopened = MakeRepo();
  ASSERT_TRUE(reopened->Open(dir_).ok());
  EXPECT_TRUE(reopened->Contains(a));
  EXPECT_TRUE(reopened->Contains(b));
  EXPECT_TRUE(reopened->Contains(c));
  EXPECT_EQ(reopened->DovsOf(DaId(1)).size(), 3u);
  EXPECT_TRUE(reopened->graph(DaId(1)).IsAncestor(a, c));
  // The interrupted checkpoint left no checkpoint record, so the next
  // one truncates the whole overlap away.
  EXPECT_GT(reopened->Checkpoint(), 0u);
  reopened->Close();

  auto third = MakeRepo();
  ASSERT_TRUE(third->Open(dir_).ok());
  EXPECT_EQ(third->DovsOf(DaId(1)).size(), 3u);
}

// --- Segmentation --------------------------------------------------------

TEST_F(DurabilityTest, CheckpointRotatesSegmentsAndDropsOldOnes) {
  auto repo = MakeRepo();
  WalOptions options;
  options.segment_bytes = 512;  // force size-based rotation too
  ASSERT_TRUE(repo->Open(dir_, options).ok());
  for (int i = 0; i < 20; ++i) CommitOne(*repo, DaId(1), i);
  size_t segments_before = repo->wal().SegmentPaths().size();
  EXPECT_GT(segments_before, 1u);

  EXPECT_GT(repo->Checkpoint(), 0u);
  // Everything before the checkpoint segment is unlinked.
  EXPECT_LT(repo->wal().SegmentPaths().size(), segments_before);
  EXPECT_EQ(repo->wal().size(), 1u);  // just the checkpoint record

  CommitOne(*repo, DaId(1), 99);
  repo->Close();
  auto reopened = MakeRepo();
  ASSERT_TRUE(reopened->Open(dir_).ok());
  EXPECT_EQ(reopened->DovsOf(DaId(1)).size(), 21u);
}

// --- Concurrency ---------------------------------------------------------

TEST_F(DurabilityTest, ReadAllIsSafeAgainstConcurrentAppenders) {
  // Satellite regression: records() used to hand out a reference that
  // raced AppendBatch reallocations. ReadAll snapshots under the lock;
  // run it against live appenders (in-memory mode, where the old race
  // lived) and let TSAN judge.
  WriteAheadLog wal;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      std::vector<WalRecord> snapshot = wal.ReadAll();
      if (!snapshot.empty()) {
        EXPECT_EQ(snapshot.front().type, WalRecord::Type::kBegin);
      }
    }
  });
  constexpr int kWriters = 4;
  constexpr int kBatches = 200;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kBatches; ++i) {
        TxnId txn(static_cast<uint64_t>(w * kBatches + i + 1));
        std::vector<WalRecord> batch;
        batch.push_back({WalRecord::Type::kBegin, txn, std::nullopt, "", ""});
        batch.push_back(
            {WalRecord::Type::kCommit, txn, std::nullopt, "", ""});
        wal.AppendBatch(std::move(batch));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(wal.size(), size_t{kWriters} * kBatches * 2);
}

TEST_F(DurabilityTest, CoalescedGroupCommitSharesFsyncs) {
  auto repo = MakeRepo();
  WalOptions options;
  options.coalesce_fsyncs = true;
  ASSERT_TRUE(repo->Open(dir_, options).ok());

  constexpr int kWriters = 8;
  constexpr int kTxnsPerWriter = 25;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kTxnsPerWriter; ++i) {
        CommitOne(*repo, DaId(static_cast<uint64_t>(w + 1)), i);
      }
    });
  }
  for (auto& t : writers) t.join();

  // Correctness: every commit is durable and replayable...
  repo->Close();
  auto reopened = MakeRepo();
  ASSERT_TRUE(reopened->Open(dir_).ok());
  size_t total = 0;
  for (int w = 0; w < kWriters; ++w) {
    total += reopened->DovsOf(DaId(static_cast<uint64_t>(w + 1))).size();
  }
  EXPECT_EQ(total, size_t{kWriters} * kTxnsPerWriter);
  // ...and a committer never pays more than one fsync; overlapping ones
  // share (strictly fewer fsyncs than commits on any real scheduler,
  // but the invariant that must hold everywhere is <=).
  EXPECT_LE(repo->wal().flushes(), size_t{kWriters} * kTxnsPerWriter);
  EXPECT_GT(repo->wal().flushes(), 0u);
}

}  // namespace
}  // namespace concord::storage
