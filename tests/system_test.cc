#include <gtest/gtest.h>

#include "common/strings.h"
#include "core/concord_system.h"
#include "sim/designer.h"
#include "sim/scenarios.h"
#include "vlsi/schema.h"
#include "vlsi/tools.h"

namespace concord::core {
namespace {

// --- End-to-end single-designer flow -------------------------------------

TEST(SystemTest, FullDesignPlaneTraversalReachesFinalDov) {
  ConcordSystem system;
  auto da = sim::SetupTopLevelDa(&system, "chip", 6, 1e9, 0);
  ASSERT_TRUE(da.ok());
  ASSERT_TRUE(system.StartDa(*da).ok());
  ASSERT_TRUE(system.RunDa(*da).ok());
  EXPECT_EQ(system.dm(*da).state(), workflow::DmState::kCompleted);

  // One DOV per tool, linearly derived.
  EXPECT_EQ(system.repository().graph(*da).size(), 5u);
  auto current = system.CurrentVersion(*da);
  ASSERT_TRUE(current.ok());
  auto quality = system.cm().Evaluate(*da, *current);
  ASSERT_TRUE(quality.ok());
  EXPECT_TRUE(quality->is_final());
  // TE-level accounting: 5 committed DOPs.
  EXPECT_EQ(system.server_tm().stats().dops_committed, 5u);
  EXPECT_EQ(system.server_tm().stats().checkins, 5u);
  // Each DOP after the first checked out its predecessor — and every
  // one of those reads its own workstation's previous checkin, which
  // cache-aware checkin made a local hit: zero server checkouts.
  EXPECT_EQ(system.server_tm().stats().checkouts, 0u);
  NodeId ws = (*system.cm().GetDa(*da))->workstation;
  EXPECT_EQ(system.client_tm(ws).stats().checkouts_from_cache, 4u);
  EXPECT_EQ(system.client_tm(ws).stats().checkin_cache_inserts, 5u);
  // All TM traffic rode the RPC envelope: 5 DOPs x (begin +
  // batched checkin/commit) = 10 server round trips.
  EXPECT_EQ(system.rpc().stats().calls, 10u);
  EXPECT_EQ(system.client_tm(ws).stats().batched_checkin_commits, 5u);
  // Simulated time advanced (tools cost work).
  EXPECT_GT(system.clock().Now(), 0);
}

TEST(SystemTest, DomainConstraintBlocksPrematureAssembly) {
  ConcordSystem system;
  NodeId ws = system.AddWorkstation("ws");
  cooperation::DaDescription desc;
  desc.dot = system.dots().chip;
  desc.designer = DesignerId(1);
  // Script violating "structure synthesis precedes chip assembly".
  std::vector<std::unique_ptr<workflow::ScriptNode>> steps;
  steps.push_back(workflow::ScriptNode::Dop(vlsi::kToolChipAssembly));
  desc.dc = workflow::Script("bad",
                             workflow::ScriptNode::Sequence(std::move(steps)));
  desc.workstation = ws;
  auto da = system.InitDesign(std::move(desc));
  ASSERT_TRUE(da.ok());
  ASSERT_TRUE(system.cm().Start(*da).ok());
  // DM start performs static validation against the domain constraints.
  EXPECT_TRUE(system.dm(*da).Start().IsConstraintViolation());
}

TEST(SystemTest, SeedlessDaCannotRunTools) {
  ConcordSystem system;
  NodeId ws = system.AddWorkstation("ws");
  cooperation::DaDescription desc;
  desc.dot = system.dots().chip;
  desc.designer = DesignerId(1);
  desc.dc = sim::MakeFullDesignScript();
  desc.workstation = ws;
  auto da = system.InitDesign(std::move(desc));
  ASSERT_TRUE(system.StartDa(*da).ok());
  EXPECT_FALSE(system.RunDa(*da).ok());
}

// --- Fig. 5 delegation scenario -------------------------------------------

TEST(SystemTest, DelegationScenarioWithoutSqueeze) {
  ConcordSystem system;
  sim::MetricsCollector metrics;
  auto result = sim::RunDelegationScenario(&system, 8, /*squeeze=*/false,
                                           &metrics);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->subs.size(), 2u);
  EXPECT_FALSE(result->impossible_sub.valid());
  EXPECT_EQ(result->replans, 0);
  EXPECT_GT(result->final_area, 0);
  // Everything terminated.
  for (DaId sub : result->subs) {
    EXPECT_EQ(*system.cm().StateOf(sub), cooperation::DaState::kTerminated);
  }
  EXPECT_EQ(*system.cm().StateOf(result->top),
            cooperation::DaState::kTerminated);
}

TEST(SystemTest, DelegationScenarioResolvesImpossibleSpec) {
  ConcordSystem system;
  sim::MetricsCollector metrics;
  auto result = sim::RunDelegationScenario(&system, 8, /*squeeze=*/true,
                                           &metrics);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->impossible_sub.valid());
  EXPECT_GE(result->replans, 1);
  // The CM logged the impossible-spec protocol.
  EXPECT_GE(system.cm().stats().das_created, 3u);
  EXPECT_EQ(system.cm().stats().das_terminated,
            result->subs.size() + 1);  // + top
}

// --- Workstation crash / recovery -----------------------------------------

TEST(SystemTest, WorkstationCrashMidWorkflowRecoversForward) {
  ConcordSystem system;
  auto da = sim::SetupTopLevelDa(&system, "chip", 6, 1e9, 0);
  ASSERT_TRUE(system.StartDa(*da).ok());
  // Run the first two DOPs only.
  auto& dm = system.dm(*da);
  while (dm.CompletedDops().size() < 2) {
    ASSERT_TRUE(dm.Step().ok());
  }
  uint64_t dops_before = system.server_tm().stats().dops_committed;

  NodeId ws = (*system.cm().GetDa(*da))->workstation;
  system.CrashWorkstation(ws);
  EXPECT_EQ(dm.state(), workflow::DmState::kCrashed);
  ASSERT_TRUE(system.RecoverWorkstation(ws).ok());
  EXPECT_EQ(dm.state(), workflow::DmState::kActive);
  // Forward recovery: the two completed DOPs were not re-executed.
  EXPECT_EQ(dm.CompletedDops().size(), 2u);
  EXPECT_EQ(system.server_tm().stats().dops_committed, dops_before);

  // Finish the remaining work.
  ASSERT_TRUE(system.RunDa(*da).ok());
  auto quality = system.cm().Evaluate(*da, *system.CurrentVersion(*da));
  EXPECT_TRUE(quality->is_final());
  // Exactly 5 DOPs total despite the crash: no duplicated work.
  EXPECT_EQ(system.server_tm().stats().dops_committed, 5u);
}

TEST(SystemTest, EventsQueuedWhileWorkstationDownArriveOnRecovery) {
  ConcordSystem system;
  sim::MetricsCollector metrics;
  // Set up supporter/requirer pair manually.
  auto top = sim::SetupTopLevelDa(&system, "top", 4, 1e9, 0);
  ASSERT_TRUE(system.StartDa(*top).ok());
  ASSERT_TRUE(system.RunDa(*top).ok());

  NodeId sub_ws = system.AddWorkstation("sub_ws");
  cooperation::DaDescription desc;
  desc.dot = system.dots().module;
  desc.designer = DesignerId(2);
  desc.dc = sim::MakeChipPlanningScript(1);
  desc.workstation = sub_ws;
  auto sub = system.CreateSubDa(*top, desc);
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(system.StartDa(*sub).ok());

  // Crash the sub's workstation, then send it an event via the CM.
  system.CrashWorkstation(sub_ws);
  ASSERT_TRUE(
      system.cm().ModifySubDaSpecification(*top, *sub, {}).ok());
  EXPECT_EQ(system.dm(*sub).stats().events_handled, 0u);  // queued
  ASSERT_TRUE(system.RecoverWorkstation(sub_ws).ok());
  EXPECT_EQ(system.dm(*sub).stats().events_handled, 1u);  // delivered
}

// --- Server crash / recovery ------------------------------------------------

TEST(SystemTest, ServerCrashRecoveryPreservesDesignState) {
  ConcordSystem system;
  auto da = sim::SetupTopLevelDa(&system, "chip", 5, 1e9, 0);
  ASSERT_TRUE(system.StartDa(*da).ok());
  ASSERT_TRUE(system.RunDa(*da).ok());
  DovId current = *system.CurrentVersion(*da);
  uint64_t hash_before =
      (*system.repository().Get(current)).data.ContentHash();
  size_t dovs_before = system.repository().DovsOf(*da).size();

  system.CrashServer();
  ASSERT_TRUE(system.RecoverServer().ok());

  EXPECT_EQ(system.repository().DovsOf(*da).size(), dovs_before);
  EXPECT_EQ((*system.repository().Get(current)).data.ContentHash(),
            hash_before);
  // CM state restored: DA exists, scope restored, evaluation works.
  EXPECT_EQ(*system.cm().StateOf(*da), cooperation::DaState::kActive);
  EXPECT_TRUE(system.cm().InScope(*da, current));
  auto quality = system.cm().Evaluate(*da, current);
  ASSERT_TRUE(quality.ok());
  EXPECT_TRUE(quality->is_final());
}

TEST(SystemTest, DopsFailWhileServerDownAndResumeAfterRecovery) {
  ConcordSystem system;
  auto da = sim::SetupTopLevelDa(&system, "chip", 5, 1e9, 0);
  ASSERT_TRUE(system.StartDa(*da).ok());
  system.CrashServer();
  EXPECT_FALSE(system.RunDa(*da).ok());  // Begin-of-DOP 2PC fails
  ASSERT_TRUE(system.RecoverServer().ok());
  ASSERT_TRUE(system.RunDa(*da).ok());
  EXPECT_TRUE(
      system.cm().Evaluate(*da, *system.CurrentVersion(*da))->is_final());
}

// --- Cooperation through the full stack ---------------------------------------

TEST(SystemTest, UsageRelationshipDeliversPreliminaryResultAcrossDas) {
  ConcordSystem system;
  auto top = sim::SetupTopLevelDa(&system, "top", 4, 1e9, 0);
  ASSERT_TRUE(system.StartDa(*top).ok());

  // Two sibling sub-DAs.
  storage::DesignSpecification spec =
      sim::MakeSpec(1e9, 0, vlsi::kDomainFloorplan);
  std::vector<DaId> subs;
  for (int i = 0; i < 2; ++i) {
    NodeId ws = system.AddWorkstation("sub" + std::to_string(i));
    cooperation::DaDescription desc;
    desc.dot = system.dots().module;
    desc.spec = spec;
    desc.designer = DesignerId(2 + i);
    desc.dc = sim::MakeChipPlanningScript(1);
    desc.workstation = ws;
    auto sub = system.CreateSubDa(*top, desc);
    ASSERT_TRUE(sub.ok());
    storage::DesignObject seed(system.dots().module);
    seed.SetAttr(vlsi::kAttrName, IndexedName("m", i));
    seed.SetAttr(vlsi::kAttrDomain, vlsi::kDomainBehavior);
    seed.SetAttr(vlsi::kAttrBehavior, "MODULE m COMPLEXITY 3");
    seed.SetAttr(vlsi::kAttrPinCount, int64_t{4});
    system.SetSeedObject(*sub, seed).ok();
    ASSERT_TRUE(system.StartDa(*sub).ok());
    subs.push_back(*sub);
  }

  // Supporter (subs[0]) produces a floorplan-quality DOV.
  ASSERT_TRUE(system.RunDa(subs[0]).ok());
  DovId produced = *system.CurrentVersion(subs[0]);
  system.cm().Evaluate(subs[0], produced).ok();

  // Requirer (subs[1]) asks for it; supporter propagates.
  ASSERT_TRUE(
      system.cm().Require(subs[1], subs[0], {"goal_domain"}).ok());
  ASSERT_TRUE(system.cm().Propagate(subs[0], produced).ok());
  EXPECT_TRUE(system.cm().InScope(subs[1], produced));

  // The requirer's client-TM may now check it out.
  txn::ClientTm& tm =
      system.client_tm((*system.cm().GetDa(subs[1]))->workstation);
  auto dop = tm.BeginDop(subs[1]);
  ASSERT_TRUE(dop.ok());
  EXPECT_TRUE(tm.Checkout(*dop, produced).ok());
  tm.AbortDop(*dop).ok();

  // Withdrawal revokes access and pauses the user if it consumed it.
  ASSERT_TRUE(system.cm().WithdrawPropagation(subs[0], produced).ok());
  EXPECT_FALSE(system.cm().InScope(subs[1], produced));
}

TEST(SystemTest, EcaRuleAutoPropagatesOnRequire) {
  ConcordSystem system;
  auto top = sim::SetupTopLevelDa(&system, "top", 4, 1e9, 0);
  ASSERT_TRUE(system.StartDa(*top).ok());

  storage::DesignSpecification spec =
      sim::MakeSpec(1e9, 0, vlsi::kDomainFloorplan);
  NodeId ws1 = system.AddWorkstation("sup");
  cooperation::DaDescription desc;
  desc.dot = system.dots().module;
  desc.spec = spec;
  desc.designer = DesignerId(2);
  desc.dc = sim::MakeChipPlanningScript(1);
  desc.workstation = ws1;
  auto supporter = system.CreateSubDa(*top, desc);
  storage::DesignObject seed(system.dots().module);
  seed.SetAttr(vlsi::kAttrName, "m");
  seed.SetAttr(vlsi::kAttrDomain, vlsi::kDomainBehavior);
  seed.SetAttr(vlsi::kAttrBehavior, "MODULE m COMPLEXITY 3");
  seed.SetAttr(vlsi::kAttrPinCount, int64_t{4});
  system.SetSeedObject(*supporter, seed).ok();
  ASSERT_TRUE(system.StartDa(*supporter).ok());
  ASSERT_TRUE(system.RunDa(*supporter).ok());
  DovId produced = *system.CurrentVersion(*supporter);
  system.cm().Evaluate(*supporter, produced).ok();

  // "WHEN Require IF (required DOV available) THEN Propagate".
  DaId supporter_id = *supporter;
  ConcordSystem* sys = &system;
  system.dm(supporter_id)
      .rules()
      .AddRule(
          "Require", "auto-propagate qualifying DOV",
          [](const workflow::Event&) { return true; },
          [sys, supporter_id, produced](const workflow::Event&) {
            return sys->cm().Propagate(supporter_id, produced);
          });

  desc.workstation = system.AddWorkstation("req");
  desc.designer = DesignerId(3);
  auto requirer = system.CreateSubDa(*top, desc);
  ASSERT_TRUE(system.StartDa(*requirer).ok());
  ASSERT_TRUE(
      system.cm().Require(*requirer, *supporter, {"goal_domain"}).ok());
  // The rule fired and the DOV is now visible to the requirer.
  EXPECT_TRUE(system.cm().InScope(*requirer, produced));
  EXPECT_GE(system.dm(supporter_id).stats().rules_fired, 1u);
}

// --- Designer agents --------------------------------------------------------

TEST(SystemTest, ScriptedDesignerDrivesAlternativesAndIterations) {
  ConcordSystem system;
  NodeId ws = system.AddWorkstation("ws");
  cooperation::DaDescription desc;
  desc.dot = system.dots().chip;
  desc.spec = sim::MakeSpec(1e9, 0, vlsi::kDomainFloorplan);
  desc.designer = DesignerId(1);
  desc.dc = sim::MakeAlternativesScript();
  desc.workstation = ws;
  auto da = system.InitDesign(std::move(desc));
  ASSERT_TRUE(da.ok());
  system.SetSeedObject(
      *da, vlsi::MakeBehavioralChip(system.dots(), "chip", 6)).ok();
  Rng rng(3);
  sim::ScriptedDesigner designer(&rng, 0.5);
  system.SetDecisionMaker(*da, &designer).ok();
  ASSERT_TRUE(system.StartDa(*da).ok());
  ASSERT_TRUE(system.RunDa(*da).ok());
  EXPECT_EQ(system.dm(*da).state(), workflow::DmState::kCompleted);
  auto quality = system.cm().Evaluate(*da, *system.CurrentVersion(*da));
  EXPECT_TRUE(quality->is_final());
}

TEST(SystemTest, DaOpScriptNodesDriveCooperationOperations) {
  // A sub-DA whose script performs the whole lifecycle itself: tools,
  // then Evaluate + Sub_DA_Ready_To_Commit as kDaOp nodes (Sect. 4.2:
  // scripts contain "specific DA operations, such as the evaluation
  // (Evaluate) of the quality state").
  ConcordSystem system;
  auto top = sim::SetupTopLevelDa(&system, "top", 4, 1e9, 0);
  ASSERT_TRUE(system.StartDa(*top).ok());

  std::vector<std::unique_ptr<workflow::ScriptNode>> steps;
  steps.push_back(workflow::ScriptNode::Dop(vlsi::kToolStructureSynthesis));
  steps.push_back(workflow::ScriptNode::Dop(vlsi::kToolShapeFunctionGen));
  steps.push_back(workflow::ScriptNode::Dop(vlsi::kToolChipPlanning));
  steps.push_back(workflow::ScriptNode::DaOp("Evaluate"));
  steps.push_back(workflow::ScriptNode::DaOp("Sub_DA_Ready_To_Commit"));

  cooperation::DaDescription desc;
  desc.dot = system.dots().module;
  desc.spec = sim::MakeSpec(1e9, 0, vlsi::kDomainFloorplan);
  desc.designer = DesignerId(2);
  desc.dc = workflow::Script(
      "autonomous", workflow::ScriptNode::Sequence(std::move(steps)));
  desc.workstation = system.AddWorkstation("sub");
  auto sub = system.CreateSubDa(*top, desc);
  ASSERT_TRUE(sub.ok());
  storage::DesignObject seed(system.dots().module);
  seed.SetAttr(vlsi::kAttrName, "m");
  seed.SetAttr(vlsi::kAttrDomain, vlsi::kDomainBehavior);
  seed.SetAttr(vlsi::kAttrBehavior, "MODULE m COMPLEXITY 3");
  seed.SetAttr(vlsi::kAttrPinCount, int64_t{4});
  system.SetSeedObject(*sub, seed).ok();
  ASSERT_TRUE(system.StartDa(*sub).ok());
  ASSERT_TRUE(system.RunDa(*sub).ok());

  // The script's DA operations did the cooperation work: the sub-DA is
  // ready for termination with a final DOV, no designer call needed.
  EXPECT_EQ(*system.cm().StateOf(*sub),
            cooperation::DaState::kReadyForTermination);
  EXPECT_FALSE((*system.cm().GetDa(*sub))->final_dovs.empty());
  ASSERT_TRUE(system.cm().TerminateSubDa(*top, *sub).ok());
}

TEST(SystemTest, UnknownDaOpInScriptFails) {
  ConcordSystem system;
  NodeId ws = system.AddWorkstation("ws");
  cooperation::DaDescription desc;
  desc.dot = system.dots().chip;
  desc.designer = DesignerId(1);
  std::vector<std::unique_ptr<workflow::ScriptNode>> steps;
  steps.push_back(workflow::ScriptNode::DaOp("No_Such_Operation"));
  desc.dc = workflow::Script(
      "bad", workflow::ScriptNode::Sequence(std::move(steps)));
  desc.workstation = ws;
  auto da = system.InitDesign(std::move(desc));
  ASSERT_TRUE(system.StartDa(*da).ok());
  EXPECT_TRUE(system.RunDa(*da).IsNotFound());
}

TEST(SystemTest, OpenScriptWithDesignerPlan) {
  ConcordSystem system;
  NodeId ws = system.AddWorkstation("ws");
  cooperation::DaDescription desc;
  desc.dot = system.dots().chip;
  desc.designer = DesignerId(1);
  desc.dc = sim::MakeOpenScript();
  desc.workstation = ws;
  auto da = system.InitDesign(std::move(desc));
  ASSERT_TRUE(da.ok());
  system.SetSeedObject(
      *da, vlsi::MakeBehavioralChip(system.dots(), "chip", 5)).ok();
  Rng rng(3);
  // The designer fills the open segment so assembly's precondition
  // (floorplan domain) holds.
  sim::ScriptedDesigner designer(
      &rng, 0.0,
      {vlsi::kToolShapeFunctionGen, vlsi::kToolPadFrameEdit,
       vlsi::kToolChipPlanning});
  system.SetDecisionMaker(*da, &designer).ok();
  ASSERT_TRUE(system.StartDa(*da).ok());
  ASSERT_TRUE(system.RunDa(*da).ok());
  EXPECT_EQ(system.dm(*da).CompletedDops().size(), 5u);
}

}  // namespace
}  // namespace concord::core
