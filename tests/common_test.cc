#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/ids.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

namespace concord {
namespace {

// --- Status ----------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_EQ(st.message(), "");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::LockConflict("y").code(), StatusCode::kLockConflict);
  EXPECT_EQ(Status::ProtocolViolation("z").code(),
            StatusCode::kProtocolViolation);
  EXPECT_EQ(Status::Aborted("a").message(), "a");
  EXPECT_TRUE(Status::Crashed("c").IsCrashed());
  EXPECT_TRUE(Status::Unavailable("u").IsUnavailable());
  EXPECT_TRUE(Status::ConstraintViolation("v").IsConstraintViolation());
  EXPECT_TRUE(Status::FailedPrecondition("f").IsFailedPrecondition());
  EXPECT_TRUE(Status::PermissionDenied("p").IsPermissionDenied());
}

TEST(StatusTest, ToStringIncludesCodeName) {
  Status st = Status::LockConflict("held elsewhere");
  EXPECT_EQ(st.ToString(), "lock conflict: held elsewhere");
}

TEST(StatusTest, CopyPreservesState) {
  Status a = Status::NotFound("gone");
  Status b = a;
  EXPECT_TRUE(b.IsNotFound());
  EXPECT_EQ(b.message(), "gone");
  b = Status::OK();
  EXPECT_TRUE(b.ok());
  EXPECT_TRUE(a.IsNotFound());  // a unaffected
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Aborted("a"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fn = [](bool fail) -> Status {
    CONCORD_RETURN_NOT_OK(fail ? Status::Aborted("inner") : Status::OK());
    return Status::Internal("reached end");
  };
  EXPECT_TRUE(fn(true).IsAborted());
  EXPECT_EQ(fn(false).code(), StatusCode::kInternal);
}

// --- Result ----------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(42), 42);
}

TEST(ResultTest, MoveOnlyValueSupported) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(3);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> taken = std::move(r).value();
  EXPECT_EQ(*taken, 3);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Aborted("boom");
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    CONCORD_ASSIGN_OR_RETURN(int v, inner(fail));
    return v * 2;
  };
  EXPECT_EQ(*outer(false), 10);
  EXPECT_TRUE(outer(true).status().IsAborted());
}

// --- Ids ----------------------------------------------------------------

TEST(IdsTest, DefaultIsInvalid) {
  DaId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.value(), 0u);
}

TEST(IdsTest, GeneratorIsMonotonic) {
  IdGenerator<DovId> gen;
  DovId a = gen.Next();
  DovId b = gen.Next();
  EXPECT_TRUE(a.valid());
  EXPECT_LT(a, b);
  EXPECT_EQ(gen.last(), 2u);
}

TEST(IdsTest, ToStringUsesPrefix) {
  EXPECT_EQ(DaId(3).ToString(), "DA3");
  EXPECT_EQ(DovId(12).ToString(), "DOV12");
  EXPECT_EQ(DopId(1).ToString(), "DOP1");
}

TEST(IdsTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<DaId, DovId>);
  static_assert(!std::is_same_v<TxnId, DopId>);
}

TEST(IdsTest, Hashable) {
  std::unordered_map<DaId, int> map;
  map[DaId(1)] = 10;
  map[DaId(2)] = 20;
  EXPECT_EQ(map.at(DaId(1)), 10);
}

// --- Clock ---------------------------------------------------------------

TEST(ClockTest, AdvanceAccumulates) {
  SimClock clock;
  EXPECT_EQ(clock.Now(), 0);
  clock.Advance(5 * kSecond);
  clock.Advance(30 * kMillisecond);
  EXPECT_EQ(clock.Now(), 5 * kSecond + 30 * kMillisecond);
}

TEST(ClockTest, AdvanceToNeverGoesBackwards) {
  SimClock clock(10 * kSecond);
  clock.AdvanceTo(5 * kSecond);
  EXPECT_EQ(clock.Now(), 10 * kSecond);
  clock.AdvanceTo(20 * kSecond);
  EXPECT_EQ(clock.Now(), 20 * kSecond);
}

TEST(ClockTest, FormatSimTime) {
  EXPECT_EQ(FormatSimTime(500), "500us");
  EXPECT_EQ(FormatSimTime(3 * kMillisecond), "3ms");
  EXPECT_EQ(FormatSimTime(2 * kSecond + 500 * kMillisecond), "2.5s");
  EXPECT_EQ(FormatSimTime(3 * kMinute + 20 * kSecond), "3m20s");
  EXPECT_EQ(FormatSimTime(2 * kHour + 3 * kMinute), "2h3m");
}

// --- Rng -----------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, IndexCoversRange) {
  Rng rng(11);
  std::vector<int> hits(4, 0);
  for (int i = 0; i < 1000; ++i) ++hits[rng.Index(4)];
  for (int h : hits) EXPECT_GT(h, 0);
}

// --- Logging ---------------------------------------------------------------

TEST(LoggingTest, CaptureCollectsRecords) {
  ScopedLogCapture capture;
  CONCORD_INFO("test", "hello " << 42);
  CONCORD_WARN("test", "danger");
  ASSERT_EQ(capture.records().size(), 2u);
  EXPECT_EQ(capture.records()[0].message, "hello 42");
  EXPECT_EQ(capture.records()[0].component, "test");
  EXPECT_EQ(capture.CountContaining("danger"), 1);
}

TEST(LoggingTest, LevelNames) {
  EXPECT_STREQ(LogLevelToString(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelToString(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace concord
