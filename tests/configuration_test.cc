#include <gtest/gtest.h>

#include "cooperation/cooperation_manager.h"
#include "storage/configuration.h"
#include "storage/repository.h"
#include "txn/lock_manager.h"

namespace concord::storage {
namespace {

class ConfigurationTest : public ::testing::Test {
 protected:
  ConfigurationTest() : repo_(&clock_), store_(&repo_) {
    auto* module = repo_.schema().DefineType("module");
    module->AddAttr({"name", AttrType::kString, false, {}, {}});
    auto* chip = repo_.schema().DefineType("chip");
    chip->AddAttr({"name", AttrType::kString, false, {}, {}});
    chip->AddPart({module->id(), 0, 100});
    chip_ = chip->id();
    module_ = module->id();
    other_ = repo_.schema().DefineType("unrelated")->id();
  }

  DovId Mint(DotId type, const std::string& name = "",
             bool invalidated = false) {
    TxnId txn = repo_.Begin();
    DovRecord record;
    record.id = repo_.NextDovId();
    record.owner_da = DaId(1);
    record.type = type;
    record.data = DesignObject(type);
    if (!name.empty()) record.data.SetAttr("name", name);
    record.invalidated = invalidated;
    repo_.Put(txn, record).ok();
    repo_.Commit(txn).ok();
    return record.id;
  }

  SimClock clock_;
  Repository repo_;
  ConfigurationStore store_;
  DotId chip_;
  DotId module_;
  DotId other_;
};

TEST_F(ConfigurationTest, SerializeRoundtrip) {
  Configuration config;
  config.name = "release_1";
  config.composite = DovId(7);
  config.bindings["alu"] = DovId(12);
  config.bindings["rom"] = DovId(15);
  auto back = Configuration::Deserialize(config.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->name, "release_1");
  EXPECT_EQ(back->composite, DovId(7));
  EXPECT_EQ(back->bindings.at("alu"), DovId(12));
  EXPECT_EQ(back->bindings.size(), 2u);
  EXPECT_FALSE(Configuration::Deserialize("").ok());
  EXPECT_FALSE(Configuration::Deserialize("name_only\n").ok());
  EXPECT_FALSE(Configuration::Deserialize("n\n7\nbadline\n").ok());
}

TEST_F(ConfigurationTest, ValidateAcceptsConsistentConfig) {
  Configuration config;
  config.name = "c";
  config.composite = Mint(chip_);
  config.bindings["m0"] = Mint(module_, "m0");
  config.bindings["m1"] = Mint(module_, "m1");
  EXPECT_TRUE(store_.Validate(config).ok());
}

TEST_F(ConfigurationTest, ValidateRejectsMissingVersions) {
  Configuration config;
  config.name = "c";
  config.composite = DovId(999);
  EXPECT_TRUE(store_.Validate(config).IsNotFound());
  config.composite = Mint(chip_);
  config.bindings["m"] = DovId(998);
  EXPECT_TRUE(store_.Validate(config).IsNotFound());
}

TEST_F(ConfigurationTest, ValidateRejectsNonPartComponent) {
  Configuration config;
  config.name = "c";
  config.composite = Mint(chip_);
  config.bindings["x"] = Mint(other_);
  EXPECT_TRUE(store_.Validate(config).IsConstraintViolation());
}

TEST_F(ConfigurationTest, ValidateRejectsInvalidatedBinding) {
  Configuration config;
  config.name = "c";
  config.composite = Mint(chip_);
  config.bindings["m"] = Mint(module_, "m", /*invalidated=*/true);
  EXPECT_TRUE(store_.Validate(config).IsConstraintViolation());
}

TEST_F(ConfigurationTest, SaveLoadListAndCrashSurvival) {
  Configuration config;
  config.name = "tapeout";
  config.composite = Mint(chip_);
  config.bindings["m0"] = Mint(module_, "m0");
  ASSERT_TRUE(store_.Save(config).ok());
  EXPECT_EQ(store_.List(), std::vector<std::string>{"tapeout"});

  repo_.Crash();
  ASSERT_TRUE(repo_.Recover().ok());
  auto loaded = store_.Load("tapeout");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->bindings.at("m0"), config.bindings.at("m0"));
  EXPECT_FALSE(store_.Load("nope").ok());
}

// --- CM composition ------------------------------------------------------

TEST_F(ConfigurationTest, CmComposesFromTerminatedSubDas) {
  txn::LockManager locks;
  cooperation::CooperationManager cm(&repo_, &locks, &clock_);
  cooperation::DaDescription top_desc;
  top_desc.dot = chip_;
  top_desc.designer = DesignerId(1);
  top_desc.workstation = NodeId(1);
  DaId top = *cm.InitDesign(top_desc);
  cm.Start(top).ok();

  DovId composite = Mint(chip_, "chip");
  locks.SetScopeOwner(composite, top);
  cm.NoteCheckin(top, composite);

  std::vector<DovId> finals;
  for (int i = 0; i < 2; ++i) {
    cooperation::DaDescription sub_desc;
    sub_desc.dot = module_;
    sub_desc.designer = DesignerId(2 + i);
    sub_desc.workstation = NodeId(2);
    DaId sub = *cm.CreateSubDa(top, sub_desc);
    cm.Start(sub).ok();
    DovId dov = Mint(module_, "m" + std::to_string(i));
    locks.SetScopeOwner(dov, sub);
    cm.NoteCheckin(sub, dov);
    cm.Evaluate(sub, dov).ok();  // empty spec -> final
    cm.SubDaReadyToCommit(sub).ok();
    cm.TerminateSubDa(top, sub).ok();
    finals.push_back(dov);
  }

  auto config = cm.ComposeConfiguration(top, "v1", composite);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->bindings.size(), 2u);
  EXPECT_EQ(config->bindings.at("m0"), finals[0]);
  EXPECT_EQ(config->bindings.at("m1"), finals[1]);
  // Durable: reload from the store.
  ConfigurationStore store(&repo_);
  EXPECT_TRUE(store.Load("v1").ok());
}

TEST_F(ConfigurationTest, CmCompositionRequiresTerminatedChildren) {
  txn::LockManager locks;
  cooperation::CooperationManager cm(&repo_, &locks, &clock_);
  cooperation::DaDescription top_desc;
  top_desc.dot = chip_;
  top_desc.designer = DesignerId(1);
  top_desc.workstation = NodeId(1);
  DaId top = *cm.InitDesign(top_desc);
  cm.Start(top).ok();
  DovId composite = Mint(chip_);
  locks.SetScopeOwner(composite, top);

  cooperation::DaDescription sub_desc;
  sub_desc.dot = module_;
  sub_desc.designer = DesignerId(2);
  sub_desc.workstation = NodeId(2);
  DaId sub = *cm.CreateSubDa(top, sub_desc);
  cm.Start(sub).ok();

  EXPECT_TRUE(cm.ComposeConfiguration(top, "v1", composite)
                  .status()
                  .IsProtocolViolation());
  (void)sub;
}

}  // namespace
}  // namespace concord::storage
