// Shared-nothing server execution: the PartitionEngine executor core,
// the partition-routing helpers, the sliced ServerLockTable, and the
// partitioned ServerTm choreography — functional parity with the
// single-executor TM at K > 1, per-partition counter accumulation,
// pipelined checkout envelopes, and the deterministic crash drain.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/ids.h"
#include "rpc/network.h"
#include "storage/repository.h"
#include "txn/partition.h"
#include "txn/scope_authority.h"
#include "txn/server_lock_table.h"
#include "txn/server_service.h"
#include "txn/server_tm.h"

namespace concord::txn {
namespace {

// --- PartitionEngine ------------------------------------------------------

TEST(PartitionEngineTest, InlineModeRunsOnCallerThread) {
  PartitionEngine engine(1);
  EXPECT_EQ(engine.count(), 1u);
  EXPECT_FALSE(engine.threaded());
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on = engine.Run(0, [] { return std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);
  // Post in inline mode executes immediately and returns a ready future.
  auto future = engine.Post(0, [] { return 41 + 1; });
  EXPECT_EQ(future.get(), 42);
}

TEST(PartitionEngineTest, ThreadedModeRunsOnOwningExecutor) {
  PartitionEngine engine(4);
  EXPECT_EQ(engine.count(), 4u);
  EXPECT_TRUE(engine.threaded());
  std::thread::id caller = std::this_thread::get_id();
  std::set<std::thread::id> executor_threads;
  for (size_t p = 0; p < 4; ++p) {
    std::thread::id ran_on =
        engine.Run(p, [] { return std::this_thread::get_id(); });
    EXPECT_NE(ran_on, caller);
    executor_threads.insert(ran_on);
    // Same partition -> same thread, every time.
    EXPECT_EQ(engine.Run(p, [] { return std::this_thread::get_id(); }),
              ran_on);
  }
  // Distinct partitions are distinct threads.
  EXPECT_EQ(executor_threads.size(), 4u);
}

TEST(PartitionEngineTest, TasksOnOnePartitionRunInFifoOrder) {
  PartitionEngine engine(2);
  std::vector<int> order;
  std::vector<std::future<void>> posted;
  for (int i = 0; i < 100; ++i) {
    // All on partition 0: the mailbox must preserve submission order.
    posted.push_back(engine.Post(0, [&order, i] { order.push_back(i); }));
  }
  for (auto& f : posted) f.get();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(PartitionEngineTest, DrainWaitsForQueuedWork) {
  PartitionEngine engine(3);
  std::atomic<int> done{0};
  for (size_t p = 0; p < 3; ++p) {
    for (int i = 0; i < 50; ++i) {
      engine.Post(p, [&done] { ++done; });
    }
  }
  engine.Drain();
  EXPECT_EQ(done.load(), 150);
}

TEST(PartitionEngineTest, StopJoinsAndFallsBackToInline) {
  PartitionEngine engine(4);
  std::atomic<int> done{0};
  for (size_t p = 0; p < 4; ++p) engine.Post(p, [&done] { ++done; });
  engine.Stop();
  EXPECT_EQ(done.load(), 4);  // queued work finished before the join
  EXPECT_FALSE(engine.threaded());
  // Post-Stop submissions run inline (the shutdown path still works).
  EXPECT_EQ(engine.Run(2, [] { return 7; }), 7);
}

TEST(PartitionEngineTest, QueueStatsCountTasks) {
  PartitionEngine engine(2);
  for (int i = 0; i < 20; ++i) {
    engine.Post(0, [] {});
  }
  engine.Drain();
  PartitionQueueSnapshot snap = engine.queue_stats(0);
  EXPECT_EQ(snap.tasks, 20u);
  EXPECT_GE(snap.batches, 1u);
  EXPECT_GE(snap.queue_high_water, 1u);
  EXPECT_EQ(engine.queue_stats(1).tasks, 0u);
}

// --- Partition routing ----------------------------------------------------

TEST(PartitionRoutingTest, SinglePartitionOwnsEverything) {
  EXPECT_EQ(DovPartitionOf(DovId(123), 1), 0u);
  EXPECT_EQ(DopPartitionOf(DopId(456), 1), 0u);
  EXPECT_EQ(TxnPartitionOf(TxnId(789), 1), 0u);
}

TEST(PartitionRoutingTest, SequentialDovIdsSpreadUniformly) {
  // DOV ids are sequential per shard; modulo-K must round-robin them.
  std::vector<int> hits(4, 0);
  for (uint64_t i = 1; i <= 400; ++i) {
    ++hits[DovPartitionOf(DovId(i), 4)];
  }
  for (int h : hits) EXPECT_EQ(h, 100);
  // Shard-namespaced ids (top 16 bits) route on the LOCAL counter, so
  // the same local id lands on the same partition regardless of shard.
  DovId sharded(uint64_t{3} << kDovShardShift | 42);
  EXPECT_EQ(DovPartitionOf(sharded, 4), DovPartitionOf(DovId(42), 4));
}

TEST(PartitionRoutingTest, MixedIdsStayInRangeAndSpread) {
  // DOP ids carry a node namespace in the high bits; the mix must keep
  // the spread healthy anyway (no partition starved over 1k ids).
  std::vector<int> hits(8, 0);
  for (uint64_t node = 1; node <= 4; ++node) {
    for (uint64_t c = 1; c <= 250; ++c) {
      ++hits[DopPartitionOf(DopId((node << 32) | c), 8)];
    }
  }
  for (int h : hits) EXPECT_GT(h, 60);
}

// --- ServerLockTable ------------------------------------------------------

TEST(ServerLockTableTest, RoutesToOwningSliceAndAggregates) {
  ServerLockTable table(4);
  EXPECT_EQ(table.partition_count(), 4u);
  DovId a(1), b(2);
  ASSERT_NE(DovPartitionOf(a, 4), DovPartitionOf(b, 4));
  ASSERT_TRUE(table.AcquireDerivation(a, DaId(1)).ok());
  ASSERT_TRUE(table.AcquireDerivation(b, DaId(2)).ok());
  // Each lock lives in exactly its owning slice.
  EXPECT_EQ(table.Slice(DovPartitionOf(a, 4)).DerivationHolder(a), DaId(1));
  EXPECT_FALSE(table.Slice(DovPartitionOf(b, 4)).DerivationHolder(a).valid());
  EXPECT_EQ(table.DerivationHolder(b), DaId(2));
  // Aggregated stats sum the slices.
  EXPECT_EQ(table.stats().derivation_locks_taken, 2u);
  // Plane-wide release fans out over all slices.
  EXPECT_EQ(table.ReleaseAllDerivation(DaId(1)), 1);
  EXPECT_FALSE(table.DerivationHolder(a).valid());
}

TEST(ServerLockTableTest, OwnedByConcatenatesSlices) {
  ServerLockTable table(4);
  for (uint64_t i = 1; i <= 8; ++i) table.SetScopeOwner(DovId(i), DaId(9));
  EXPECT_EQ(table.OwnedBy(DaId(9)).size(), 8u);
}

// --- Partitioned ServerTm -------------------------------------------------

class PartitionedTmTest : public ::testing::TestWithParam<int> {
 protected:
  PartitionedTmTest() : network_(&clock_, 1), repo_(&clock_) {
    server_node_ = network_.AddNode("server");
    auto* type = repo_.schema().DefineType("thing");
    type->AddAttr({"value", storage::AttrType::kInt, true, 0.0, 1000.0});
    dot_ = type->id();
    server_ = std::make_unique<ServerTm>(&repo_, &network_, server_node_,
                                         &scope_, nullptr, GetParam());
  }

  storage::DesignObject MakeObj(int64_t value) {
    storage::DesignObject obj(dot_);
    obj.SetAttr("value", value);
    return obj;
  }

  DovId Seed(DaId da, int64_t value) {
    TxnId txn = repo_.Begin();
    storage::DovRecord record;
    record.id = repo_.NextDovId();
    record.owner_da = da;
    record.type = dot_;
    record.data = MakeObj(value);
    DovId id = record.id;
    repo_.Put(txn, std::move(record)).ok();
    repo_.Commit(txn).ok();
    server_->locks().SetScopeOwner(id, da);
    return id;
  }

  SimClock clock_;
  rpc::Network network_;
  storage::Repository repo_;
  PermissiveScopeAuthority scope_;
  NodeId server_node_;
  DotId dot_;
  std::unique_ptr<ServerTm> server_;
};

INSTANTIATE_TEST_SUITE_P(Partitions, PartitionedTmTest,
                         ::testing::Values(1, 4));

TEST_P(PartitionedTmTest, FullDopLifecycleAcrossPartitions) {
  EXPECT_EQ(server_->partition_count(), static_cast<size_t>(GetParam()));
  // Enough inputs to touch every partition.
  std::vector<DovId> inputs;
  for (int i = 0; i < 8; ++i) inputs.push_back(Seed(DaId(1), i));

  DopId dop(7);
  ASSERT_TRUE(server_->BeginDop(dop, DaId(1)).ok());
  for (DovId input : inputs) {
    auto record = server_->Checkout(dop, input, /*take_derivation_lock=*/true);
    ASSERT_TRUE(record.ok());
    EXPECT_EQ(record->id, input);
    EXPECT_EQ(server_->locks().DerivationHolder(input), DaId(1));
  }
  auto out = server_->Checkin(dop, MakeObj(99), inputs, clock_.Now());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(server_->locks().ScopeOwner(*out), DaId(1));
  ASSERT_TRUE(server_->CommitDop(dop).ok());
  // End-of-DOP released every derivation lock, whichever slice held it.
  for (DovId input : inputs) {
    EXPECT_FALSE(server_->locks().DerivationHolder(input).valid());
  }

  ServerTmStats stats = server_->stats();
  EXPECT_EQ(stats.checkouts, 8u);
  EXPECT_EQ(stats.checkins, 1u);
  EXPECT_EQ(stats.dops_begun, 1u);
  EXPECT_EQ(stats.dops_committed, 1u);
}

TEST_P(PartitionedTmTest, DenialsAndUnknownDopsKeepTheirTypedStatus) {
  DovId input = Seed(DaId(1), 5);
  DopId dop(1), other(2);
  ASSERT_TRUE(server_->BeginDop(dop, DaId(1)).ok());
  ASSERT_TRUE(server_->BeginDop(other, DaId(2)).ok());
  // Derivation-lock conflict across DAs.
  ASSERT_TRUE(server_->Checkout(dop, input, true).ok());
  auto denied = server_->Checkout(other, input, true);
  EXPECT_TRUE(denied.status().IsLockConflict());
  // Unregistered DOP.
  EXPECT_TRUE(server_->Checkout(DopId(99), input, false).status().IsNotFound());
  ServerTmStats stats = server_->stats();
  EXPECT_EQ(stats.checkouts_denied_lock, 1u);
}

TEST_P(PartitionedTmTest, StatsAggregateExactlyFromPartitionSlices) {
  std::vector<DovId> inputs;
  for (int i = 0; i < 16; ++i) inputs.push_back(Seed(DaId(1), i));
  DopId dop(3);
  ASSERT_TRUE(server_->BeginDop(dop, DaId(1)).ok());
  for (DovId input : inputs) {
    ASSERT_TRUE(server_->Checkout(dop, input, false).ok());
  }
  ServerTmStats total = server_->stats();
  uint64_t checkouts_summed = 0;
  for (size_t p = 0; p < server_->partition_count(); ++p) {
    checkouts_summed += server_->partition_stats(p).checkouts;
  }
  EXPECT_EQ(total.checkouts, 16u);
  EXPECT_EQ(checkouts_summed, total.checkouts);
  if (GetParam() > 1) {
    // Uniform DOV round-robin: every partition saw exactly its share,
    // counted on its own slice.
    for (size_t p = 0; p < server_->partition_count(); ++p) {
      EXPECT_EQ(server_->partition_stats(p).checkouts,
                16u / server_->partition_count());
    }
  }
}

TEST_P(PartitionedTmTest, CheckoutBatchIsPositionalAndCountsPipelining) {
  std::vector<DovId> inputs;
  for (int i = 0; i < 8; ++i) inputs.push_back(Seed(DaId(1), i));
  DopId dop(5);
  ASSERT_TRUE(server_->BeginDop(dop, DaId(1)).ok());

  std::vector<ServerTm::CheckoutOp> ops;
  for (DovId input : inputs) ops.push_back({dop, input, false});
  // Slot 3: unregistered DOP; slot 5: unknown DOV. Results must stay
  // positional around the failures.
  ops[3].dop = DopId(99);
  ops[5].dov = DovId(123456);
  auto results = server_->CheckoutBatch(ops);
  ASSERT_EQ(results.size(), ops.size());
  for (size_t i = 0; i < results.size(); ++i) {
    if (i == 3) {
      EXPECT_TRUE(results[i].status().IsNotFound());
    } else if (i == 5) {
      EXPECT_FALSE(results[i].ok());
    } else {
      ASSERT_TRUE(results[i].ok());
      EXPECT_EQ(results[i]->id, inputs[i]);
    }
  }
  ServerTmStats stats = server_->stats();
  EXPECT_EQ(stats.pipelined_batches, 1u);
  EXPECT_EQ(stats.pipelined_ops, ops.size());
  EXPECT_EQ(stats.checkouts, 6u);
}

TEST_P(PartitionedTmTest, IndependentCheckoutEnvelopeTakesPipelinedPath) {
  std::vector<DovId> inputs;
  for (int i = 0; i < 6; ++i) inputs.push_back(Seed(DaId(1), i));
  DopId dop(11);
  ASSERT_TRUE(server_->BeginDop(dop, DaId(1)).ok());

  BatchRequest batch;
  batch.independent = true;
  for (DovId input : inputs) {
    batch.ops.emplace_back(CheckoutRequest{dop, input, false});
  }
  BatchReply reply = DispatchBatch(*server_, batch);
  ASSERT_EQ(reply.ops.size(), inputs.size());
  for (size_t i = 0; i < reply.ops.size(); ++i) {
    ASSERT_TRUE(reply.ops[i].status.ok());
    auto* body = std::get_if<CheckoutReply>(&reply.ops[i].body);
    ASSERT_NE(body, nullptr);
    EXPECT_EQ(body->record.id, inputs[i]);
  }
  EXPECT_EQ(server_->stats().pipelined_batches, 1u);

  // A dependent envelope of the same ops must NOT take the pipelined
  // path (order could matter to the client).
  batch.independent = false;
  DispatchBatch(*server_, batch);
  EXPECT_EQ(server_->stats().pipelined_batches, 1u);
}

TEST_P(PartitionedTmTest, CrashWipesAllPartitionsAndRecoverRestores) {
  DovId input = Seed(DaId(1), 5);
  std::vector<DopId> dops;
  for (uint64_t i = 1; i <= 8; ++i) {
    DopId dop(i);
    ASSERT_TRUE(server_->BeginDop(dop, DaId(1)).ok());
    ASSERT_TRUE(server_->Checkout(dop, input, false).ok());
    dops.push_back(dop);
  }
  server_->Crash();
  ASSERT_TRUE(server_->Recover().ok());
  // Every partition's registrations were wiped and remembered: any
  // pre-crash DOP now answers the typed kUnknownDop, whichever
  // partition owned it.
  for (DopId dop : dops) {
    EXPECT_TRUE(server_->Checkout(dop, input, false).status().IsUnknownDop());
  }
  EXPECT_EQ(server_->stats().unknown_dop_requests, 8u);
}

// The satellite regression: crash/recover must drain in-flight
// partition work deterministically — no executor may touch freed or
// wiped state after Crash() returns. Run under TSAN in CI.
TEST(PartitionCrashDrainTest, CrashRecoverUnderConcurrentTraffic) {
  SimClock clock;
  rpc::Network network(&clock, 1);
  storage::Repository repo(&clock);
  auto* type = repo.schema().DefineType("thing");
  type->AddAttr({"value", storage::AttrType::kInt, true, 0.0, 1000.0});
  DotId dot = type->id();
  PermissiveScopeAuthority scope;
  NodeId node = network.AddNode("server");
  ServerTm server(&repo, &network, node, &scope, nullptr, /*partitions=*/4);

  std::vector<DovId> inputs;
  for (int i = 0; i < 32; ++i) {
    TxnId txn = repo.Begin();
    storage::DovRecord record;
    record.id = repo.NextDovId();
    record.owner_da = DaId(1);
    record.type = dot;
    record.data = storage::DesignObject(dot);
    record.data.SetAttr("value", static_cast<int64_t>(i));
    DovId id = record.id;
    repo.Put(txn, std::move(record)).ok();
    repo.Commit(txn).ok();
    server.locks().SetScopeOwner(id, DaId(1));
    inputs.push_back(id);
  }

  constexpr int kDesigners = 8;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ops{0};
  std::vector<std::thread> designers;
  for (int t = 0; t < kDesigners; ++t) {
    designers.emplace_back([&, t] {
      uint64_t seq = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Fresh DOP ids per attempt: registrations race the crashes,
        // and every status (OK / unknown-DOP / not-found) is legal —
        // the invariant under test is freedom from data races and
        // use-after-wipe, not success.
        DopId dop(1000 + static_cast<uint64_t>(t) * 1000000 + ++seq);
        if (server.BeginDop(dop, DaId(1)).ok()) {
          for (int i = 0; i < 4; ++i) {
            server.Checkout(dop, inputs[(t * 4 + i) % inputs.size()],
                            (i % 2) == 0);
          }
          storage::DesignObject obj(dot);
          obj.SetAttr("value", static_cast<int64_t>(seq % 1000));
          server.Checkin(dop, std::move(obj), {}, 0);
          server.CommitDop(dop).ok();
        }
        ++ops;
      }
    });
  }

  for (int round = 0; round < 5; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    server.Crash();
    ASSERT_TRUE(server.Recover().ok());
  }
  stop.store(true);
  for (auto& d : designers) d.join();
  EXPECT_GT(ops.load(), 0u);
  // The system still works after the storm.
  DopId dop(1);
  ASSERT_TRUE(server.BeginDop(dop, DaId(1)).ok());
  EXPECT_TRUE(server.Checkout(dop, inputs[0], false).ok());
}

}  // namespace
}  // namespace concord::txn
