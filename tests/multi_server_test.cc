// The sharded server plane: DOV-id shard routing, CM-driven placement
// with stale workstation caches (kWrongShard + refresh), true
// multi-participant 2PC for cross-shard checkin+commit — atomic under
// 30% message loss — and one-node crash independence (the surviving
// shard keeps serving; recovery re-derives the node's lock tables).

#include <gtest/gtest.h>

#include <thread>

#include "bench/bench_tm_env.h"
#include "common/ids.h"
#include "sim/simulator.h"
#include "storage/repository.h"
#include "txn/client_tm.h"
#include "txn/placement.h"
#include "txn/remote_server_stub.h"
#include "txn/server_tm.h"

namespace concord::txn {
namespace {

/// The shared multi-node fixture is bench::TmEnv (one place to update
/// when the plane's wiring changes); this adapter only adds the
/// failure-injection and object helpers the tests need. Note TmEnv
/// pre-seeds one warm DOV per workstation, owned by DA(w+1) on
/// shard 0 — tests use DA ids >= 10 for their own activities.
struct Plane : bench::TmEnv {
  explicit Plane(int server_nodes, int workstations = 1, int partitions = 1)
      : bench::TmEnv(workstations, server_nodes, partitions) {}

  storage::DesignObject MakeObject(int64_t value) {
    storage::DesignObject object(dot);
    object.SetAttr("value", value);
    return object;
  }

  /// Seeds one committed DOV owned by `da` on `shard` (scope + data +
  /// placement).
  DovId Seed(size_t shard, DaId da, int64_t value) {
    return SeedOn(shard, da, value);
  }

  void CrashNode(size_t shard) {
    shards[shard].tm->Crash();
    rpc.ClearNodeState(shards[shard].node);
  }
};

TEST(MultiServerPlaneTest, DovIdsCarryTheirShard) {
  Plane plane(3);
  DovId s0 = plane.Seed(0, DaId(10), 1);
  DovId s1 = plane.Seed(1, DaId(11), 2);
  DovId s2 = plane.Seed(2, DaId(12), 3);
  EXPECT_EQ(DovShardOf(s0), 0u);
  EXPECT_EQ(DovShardOf(s1), 1u);
  EXPECT_EQ(DovShardOf(s2), 2u);
  // Per-shard local counters run independently (same first id on the
  // two untouched shards), so ids can never collide across shards.
  EXPECT_EQ(DovLocalOf(s1), DovLocalOf(s2));
  // Each shard's repository holds only its own ids.
  EXPECT_TRUE(plane.shards[1].repo->Contains(s1));
  EXPECT_FALSE(plane.shards[1].repo->Contains(s0));
}

TEST(MultiServerPlaneTest, PlacementLeastLoadedSpreadsDas) {
  Plane plane(2);
  NodeId first = plane.placement.AssignLeastLoaded(DaId(11));
  NodeId second = plane.placement.AssignLeastLoaded(DaId(12));
  EXPECT_NE(first, second);
  // Idempotent: a placed DA keeps its home.
  EXPECT_EQ(plane.placement.AssignLeastLoaded(DaId(11)), first);
  // Release frees the slot for the next assignment.
  plane.placement.Release(DaId(11));
  EXPECT_EQ(plane.placement.AssignLeastLoaded(DaId(13)), first);
}

TEST(MultiServerPlaneTest, PlacementSkipsDeadNodes) {
  Plane plane(2);
  plane.CrashNode(1);
  // Node 1's load counter is the lowest precisely because it is dead;
  // the liveness probe keeps fresh DAs off it.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(plane.placement.AssignLeastLoaded(DaId(20 + i)),
              plane.shards[0].node);
  }
  ASSERT_TRUE(plane.shards[1].tm->Recover().ok());
  EXPECT_EQ(plane.placement.AssignLeastLoaded(DaId(30)),
            plane.shards[1].node);
}

TEST(MultiServerPlaneTest, CrossShardCheckinCommitSpansBothShards) {
  Plane plane(2);
  DaId da(10);
  ASSERT_TRUE(plane.placement.Assign(da, plane.shards[1].node).ok());
  DovId input = plane.Seed(0, DaId(21), 5);

  ClientTm& tm = *plane.clients[0];
  auto dop = tm.BeginDop(da);
  ASSERT_TRUE(dop.ok()) << dop.status().ToString();
  // The input lives on shard 0: this checkout enlists the DOP there.
  ASSERT_TRUE(tm.Checkout(*dop, input).ok());
  auto dov = tm.CheckinCommit(*dop, plane.MakeObject(6), {input});
  ASSERT_TRUE(dov.ok()) << dov.status().ToString();

  // The new DOV was created on the DA's home shard, and the End-of-DOP
  // resolved on every participant (true multi-participant 2PC).
  EXPECT_EQ(DovShardOf(*dov), 1u);
  EXPECT_TRUE(plane.shards[1].repo->Contains(*dov));
  EXPECT_EQ(plane.shards[0].tm->stats().txns_decided_commit, 1u);
  EXPECT_EQ(plane.shards[1].tm->stats().txns_decided_commit, 1u);
  EXPECT_EQ(tm.two_pc_stats().multi_node_protocols, 1u);
  // Both registrations are gone: a later request gets NotFound.
  EXPECT_TRUE(plane.shards[0].tm->DaOfDop(*dop).status().IsNotFound());
  EXPECT_TRUE(plane.shards[1].tm->DaOfDop(*dop).status().IsNotFound());
}

TEST(MultiServerPlaneTest, CrossShardCheckinFailureAbortsEverywhere) {
  Plane plane(2);
  DaId da(10);
  ASSERT_TRUE(plane.placement.Assign(da, plane.shards[1].node).ok());
  DovId input = plane.Seed(0, DaId(21), 5);

  ClientTm& tm = *plane.clients[0];
  auto dop = tm.BeginDop(da);
  ASSERT_TRUE(dop.ok());
  ASSERT_TRUE(tm.Checkout(*dop, input).ok());
  // Integrity failure: "value" is required. The home shard's vote is
  // honest (prepare runs the schema check), the decision is abort, and
  // the commit leg staged on shard 0 is discarded.
  storage::DesignObject bad(plane.dot);
  auto dov = tm.CheckinCommit(*dop, std::move(bad), {input});
  ASSERT_FALSE(dov.ok());
  EXPECT_TRUE(dov.status().IsConstraintViolation())
      << dov.status().ToString();

  // Nothing committed anywhere; the DOP is still live on both shards
  // and can finish normally afterwards.
  EXPECT_EQ(plane.shards[1].repo->DovsOf(da).size(), 0u);
  EXPECT_TRUE(plane.shards[0].tm->DaOfDop(*dop).ok());
  EXPECT_TRUE(plane.shards[1].tm->DaOfDop(*dop).ok());
  EXPECT_GE(plane.shards[0].tm->stats().txns_decided_abort, 1u);
  auto good = tm.CheckinCommit(*dop, plane.MakeObject(7), {input});
  EXPECT_TRUE(good.ok()) << good.status().ToString();
}

TEST(MultiServerPlaneTest, CrossShardAtomicityUnder30PercentLoss) {
  Plane plane(2);
  plane.network.set_loss_probability(0.30);
  DaId da(10);
  ASSERT_TRUE(plane.placement.Assign(da, plane.shards[1].node).ok());
  DovId input = plane.Seed(0, DaId(21), 5);

  ClientTm& tm = *plane.clients[0];
  int committed = 0, failed = 0;
  for (int i = 0; i < 60; ++i) {
    // Force a real cross-shard interaction every round: a cached
    // checkout would skip the shard-0 leg entirely.
    tm.cache().Invalidate(input);
    auto dop = tm.BeginDop(da);
    if (!dop.ok()) {
      ++failed;
      continue;
    }
    if (!tm.Checkout(*dop, input).ok()) {
      tm.AbortDop(*dop).ok();
      ++failed;
      continue;
    }
    auto dov = tm.CheckinCommit(*dop, plane.MakeObject(i), {input});
    if (dov.ok()) {
      // Committed on BOTH shards: the DOV exists on the home shard...
      EXPECT_TRUE(plane.shards[1].repo->Contains(*dov));
      // ...and no participant still holds the registration.
      EXPECT_TRUE(plane.shards[0].tm->DaOfDop(*dop).status().IsNotFound());
      EXPECT_TRUE(plane.shards[1].tm->DaOfDop(*dop).status().IsNotFound());
      ++committed;
    } else {
      tm.AbortDop(*dop).ok();
      ++failed;
    }
  }
  // Both shards or neither: every committed transaction left exactly
  // one DOV, every failed one left none.
  EXPECT_EQ(plane.shards[1].repo->DovsOf(da).size(),
            static_cast<size_t>(committed));
  EXPECT_EQ(plane.shards[0].repo->DovsOf(da).size(), 0u);
  EXPECT_GT(committed, 0);
  // The lossy link really was exercised.
  EXPECT_GT(plane.rpc.stats().retries, 0u);
}

TEST(MultiServerPlaneTest, OneNodeCrashLeavesOtherShardServing) {
  Plane plane(2);
  DaId da_alive(11);  // homed on shard 0
  DaId da_victim(12); // homed on shard 1
  ASSERT_TRUE(plane.placement.Assign(da_alive, plane.shards[0].node).ok());
  ASSERT_TRUE(plane.placement.Assign(da_victim, plane.shards[1].node).ok());
  DovId alive_input = plane.Seed(0, da_alive, 1);

  ClientTm& tm = *plane.clients[0];
  // Crash the non-coordinator node.
  plane.CrashNode(1);

  // The victim's shard is down: Begin-of-DOP cannot reach it.
  auto dead = tm.BeginDop(da_victim);
  EXPECT_FALSE(dead.ok());

  // The surviving shard serves its DA end to end, unaffected.
  auto dop = tm.BeginDop(da_alive);
  ASSERT_TRUE(dop.ok()) << dop.status().ToString();
  ASSERT_TRUE(tm.Checkout(*dop, alive_input).ok());
  auto dov = tm.CheckinCommit(*dop, plane.MakeObject(2), {alive_input});
  ASSERT_TRUE(dov.ok()) << dov.status().ToString();
  EXPECT_EQ(DovShardOf(*dov), 0u);

  // Recovery brings the crashed shard back into service.
  ASSERT_TRUE(plane.shards[1].tm->Recover().ok());
  auto revived = tm.BeginDop(da_victim);
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  auto v = tm.CheckinCommit(*revived, plane.MakeObject(3), {});
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(DovShardOf(*v), 1u);
}

// Regression: a cross-shard CheckinCommit whose envelope BOTH enlists
// the new home and aborts (integrity failure) must leave the client's
// participant list and the server's registration table agreeing, so a
// retry with a valid object succeeds instead of wedging on kNotFound.
TEST(MultiServerPlaneTest, RetryAfterCrossShardAbortWithFreshEnlistment) {
  Plane plane(2);
  DaId da(10);
  ASSERT_TRUE(plane.placement.Assign(da, plane.shards[0].node).ok());
  ClientTm& tm = *plane.clients[0];
  auto dop = tm.BeginDop(da);  // enlists the old home (shard 0)
  ASSERT_TRUE(dop.ok());
  // Migrate under the client's cache; the next checkin must refresh
  // and enlist shard 1 inside the same (aborting) envelope.
  ASSERT_TRUE(plane.placement.Migrate(da, plane.shards[1].node).ok());
  storage::DesignObject bad(plane.dot);  // missing required "value"
  auto failed = tm.CheckinCommit(*dop, std::move(bad), {});
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsConstraintViolation())
      << failed.status().ToString();
  // The DOP is registered at the new home despite the abort...
  EXPECT_TRUE(plane.shards[1].tm->DaOfDop(*dop).ok());
  // ...so the retry commits cleanly on it.
  auto dov = tm.CheckinCommit(*dop, plane.MakeObject(4), {});
  ASSERT_TRUE(dov.ok()) << dov.status().ToString();
  EXPECT_EQ(DovShardOf(*dov), 1u);
}

TEST(MultiServerPlaneTest, AbortDopToleratesDownParticipant) {
  Plane plane(2);
  DaId da(10);
  ASSERT_TRUE(plane.placement.Assign(da, plane.shards[1].node).ok());
  DovId input = plane.Seed(0, DaId(21), 5);
  ClientTm& tm = *plane.clients[0];
  auto dop = tm.BeginDop(da);
  ASSERT_TRUE(dop.ok());
  ASSERT_TRUE(tm.Checkout(*dop, input).ok());  // enlists shard 0 too
  // One participant crashes; the abort's independent fan-out must
  // still release the live shard and finish the DOP client-side (the
  // dead node's registration is volatile memory dying with it).
  plane.CrashNode(0);
  EXPECT_TRUE(tm.AbortDop(*dop).ok());
  EXPECT_TRUE(plane.shards[1].tm->DaOfDop(*dop).status().IsNotFound());
  auto state = tm.StateOf(*dop);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, DopState::kAborted);
}

TEST(MultiServerPlaneTest, StalePlacementCacheRefreshesOnWrongShard) {
  Plane plane(2);
  DaId da(10);
  ASSERT_TRUE(plane.placement.Assign(da, plane.shards[0].node).ok());

  ClientTm& tm = *plane.clients[0];
  auto dop1 = tm.BeginDop(da);
  ASSERT_TRUE(dop1.ok());
  auto first = tm.CheckinCommit(*dop1, plane.MakeObject(1), {});
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(DovShardOf(*first), 0u);

  // The CM migrates the DA; this workstation's cache still says
  // shard 0.
  ASSERT_TRUE(plane.placement.Migrate(da, plane.shards[1].node).ok());

  auto dop2 = tm.BeginDop(da);
  ASSERT_TRUE(dop2.ok());
  auto second = tm.CheckinCommit(*dop2, plane.MakeObject(2), {});
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  // The stale route was detected (kWrongShard), forgotten, re-fetched,
  // and the checkin landed on the new home.
  EXPECT_EQ(DovShardOf(*second), 1u);
  EXPECT_EQ(tm.stats().placement_refreshes, 1u);
  EXPECT_GE(plane.shards[0].tm->stats().wrong_shard_requests, 1u);
  // Old versions stay readable where they were created.
  tm.cache().Invalidate(*first);
  auto dop3 = tm.BeginDop(da);
  ASSERT_TRUE(dop3.ok());
  EXPECT_TRUE(tm.Checkout(*dop3, *first).ok());
}

TEST(MultiServerPlaneTest, DecideAbortUndoesPhaseOneSideEffects) {
  Plane plane(2);
  DaId da(10);
  ASSERT_TRUE(plane.placement.Assign(da, plane.shards[0].node).ok());
  DovId input = plane.Seed(0, da, 5);
  ServerTm& tm = *plane.shards[0].tm;

  TxnId txn(991);
  ASSERT_TRUE(tm.PrepareBeginDop(txn, DopId(501), da).ok());
  auto record = tm.PrepareCheckout(txn, DopId(501), input,
                                   /*take_derivation_lock=*/true);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(tm.locks().DerivationHolder(input), da);
  auto staged = tm.PrepareCheckin(txn, DopId(501), plane.MakeObject(6),
                                  {input}, 0);
  ASSERT_TRUE(staged.ok());
  EXPECT_TRUE(tm.HasPrepared(txn));
  EXPECT_FALSE(plane.shards[0].repo->Contains(*staged));

  ASSERT_TRUE(tm.Decide(txn, /*commit=*/false).ok());
  EXPECT_FALSE(tm.HasPrepared(txn));
  // The staged checkin never reached the repository and the derivation
  // lock is free again; the registration SURVIVES the abort (it is
  // enlistment, not data — the client recorded this node as a
  // participant on the Begin reply, and both sides must keep agreeing
  // so a retried interaction can still run here).
  EXPECT_FALSE(plane.shards[0].repo->Contains(*staged));
  EXPECT_TRUE(tm.DaOfDop(DopId(501)).ok());
  EXPECT_FALSE(tm.locks().DerivationHolder(input).valid());
  // A repeated decision is acknowledged idempotently.
  EXPECT_TRUE(tm.Decide(txn, false).ok());
}

TEST(MultiServerPlaneTest, ServerCrashWipesPreparedLedger) {
  Plane plane(2);
  DaId da(10);
  ASSERT_TRUE(plane.placement.Assign(da, plane.shards[0].node).ok());
  ServerTm& tm = *plane.shards[0].tm;
  TxnId txn(992);
  ASSERT_TRUE(tm.PrepareBeginDop(txn, DopId(502), da).ok());
  auto staged =
      tm.PrepareCheckin(txn, DopId(502), plane.MakeObject(1), {}, 0);
  ASSERT_TRUE(staged.ok());
  EXPECT_TRUE(tm.HasPrepared(txn));
  plane.CrashNode(0);
  ASSERT_TRUE(tm.Recover().ok());
  // Presumed abort: the volatile ledger died with the node; the
  // decision is acknowledged but nothing applies.
  EXPECT_FALSE(tm.HasPrepared(txn));
  EXPECT_TRUE(tm.Decide(txn, true).ok());
  EXPECT_FALSE(plane.shards[0].repo->Contains(*staged));
}

TEST(MultiServerPlaneTest, DecideDuringCrashWipeIsRefusedUntilRecovery) {
  // Regression for a fabricated commit ack the chaos harness found: a
  // Decide(commit) racing ServerTm::Crash could find the volatile
  // ledger already wiped and answer the idempotent "nothing staged"
  // OK — but the stage was PERSISTED, recovery re-stages it, and the
  // coordinator (holding the ack) never re-sends the decision, so the
  // staged checkin was lost forever. With a crash wipe pending, the
  // nothing-staged path must refuse instead.
  Plane plane(2);
  DaId da(10);
  ASSERT_TRUE(plane.placement.Assign(da, plane.shards[0].node).ok());
  ServerTm& tm = *plane.shards[0].tm;
  TxnId txn(993);
  ASSERT_TRUE(tm.PrepareBeginDop(txn, DopId(503), da).ok());
  auto staged =
      tm.PrepareCheckin(txn, DopId(503), plane.MakeObject(9), {}, 0);
  ASSERT_TRUE(staged.ok());
  ASSERT_TRUE(tm.PersistPrepared(txn).ok());
  plane.CrashNode(0);
  // The wipe beat this decision to the ledger: no ack, no effects.
  Status decide = tm.Decide(txn, /*commit=*/true);
  EXPECT_FALSE(decide.ok());
  EXPECT_FALSE(plane.shards[0].repo->Contains(*staged));
  // Recovery re-stages the persisted entry; the retried decision
  // applies it, and one more retry is the ordinary duplicate ack.
  ASSERT_TRUE(tm.Recover().ok());
  EXPECT_TRUE(tm.HasPrepared(txn));
  EXPECT_TRUE(tm.Decide(txn, true).ok());
  EXPECT_TRUE(plane.shards[0].repo->Contains(*staged));
  EXPECT_TRUE(tm.Decide(txn, true).ok());
}

TEST(MultiServerPlaneTest, WrongShardCheckinIsTyped) {
  Plane plane(2, /*workstations=*/1);
  DaId da(10);
  ASSERT_TRUE(plane.placement.Assign(da, plane.shards[1].node).ok());
  // Direct single-op call against the wrong node's service.
  RemoteServerStub stub(&plane.rpc, plane.clients[0]->node(),
                        plane.shards[0].node);
  ASSERT_TRUE(stub.BeginDop(DopId(601), da).ok());
  auto dov = stub.Checkin(DopId(601), plane.MakeObject(1), {}, 0);
  ASSERT_FALSE(dov.ok());
  EXPECT_TRUE(dov.status().IsWrongShard()) << dov.status().ToString();
}

/// Two designer threads, two shards, cross-shard commits racing — the
/// plane's tables (placement, ledger, per-node dedup) must be
/// TSAN-clean.
TEST(MultiServerPlaneTest, ConcurrentCrossShardCommits) {
  Plane plane(2, /*workstations=*/2);
  DovId input0 = plane.Seed(0, DaId(21), 1);
  DovId input1 = plane.Seed(1, DaId(22), 2);
  ASSERT_TRUE(plane.placement.Assign(DaId(11), plane.shards[0].node).ok());
  ASSERT_TRUE(plane.placement.Assign(DaId(12), plane.shards[1].node).ok());

  auto worker = [&](int w, DaId da, DovId cross_input) {
    ClientTm& tm = *plane.clients[w];
    for (int i = 0; i < 25; ++i) {
      tm.cache().Invalidate(cross_input);
      auto dop = tm.BeginDop(da);
      ASSERT_TRUE(dop.ok());
      ASSERT_TRUE(tm.Checkout(*dop, cross_input).ok());
      auto dov = tm.CheckinCommit(*dop, plane.MakeObject(i), {cross_input});
      ASSERT_TRUE(dov.ok()) << dov.status().ToString();
    }
  };
  // Each workstation's DA reads a seed on the OTHER shard: every
  // commit is multi-participant.
  std::thread t0(worker, 0, DaId(11), input1);
  std::thread t1(worker, 1, DaId(12), input0);
  t0.join();
  t1.join();
  EXPECT_EQ(plane.shards[0].repo->DovsOf(DaId(11)).size(), 25u);
  EXPECT_EQ(plane.shards[1].repo->DovsOf(DaId(12)).size(), 25u);
}

/// The partitioned plane under fire: every node runs 4 executor
/// partitions, every commit is multi-participant (the DA's home on one
/// shard, the checked-out inputs on the other), the inputs and the
/// created DOVs span all four partitions of each node, and the LAN
/// drops 30% of the messages — with four designer threads racing.
/// Atomicity must hold op by op (both shards or neither), and the
/// whole storm must be TSAN-clean.
TEST(MultiServerPlaneTest, PartitionedCrossShardAtomicityUnder30PercentLoss) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 20;
  Plane plane(2, /*workstations=*/kThreads, /*partitions=*/4);
  ASSERT_EQ(plane.shards[0].tm->partition_count(), 4u);

  // Four sequential seeds per shard: DovPartitionOf round-robins them
  // over all four partitions, so a 4-input checkout fans across the
  // whole node.
  std::vector<DovId> inputs_on[2];
  for (int s = 0; s < 2; ++s) {
    for (int i = 0; i < 4; ++i) {
      inputs_on[s].push_back(
          plane.Seed(static_cast<size_t>(s), DaId(60 + s), i));
    }
  }
  // Thread t's DA is homed on shard t%2 and reads the OTHER shard's
  // seeds: every CheckinCommit is a two-participant 2PC.
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(plane.placement
                    .Assign(DaId(40 + t), plane.shards[t % 2].node)
                    .ok());
  }

  plane.network.set_loss_probability(0.30);
  int committed[kThreads] = {};
  auto designer = [&](int t) {
    ClientTm& tm = *plane.clients[t];
    DaId da(40 + t);
    const std::vector<DovId>& inputs = inputs_on[(t + 1) % 2];
    for (int round = 0; round < kRounds; ++round) {
      for (DovId input : inputs) tm.cache().Invalidate(input);
      auto dop = tm.BeginDop(da);
      if (!dop.ok()) continue;
      bool checked_out = true;
      std::vector<DovId> read;
      for (DovId input : inputs) {
        if (tm.Checkout(*dop, input).ok()) {
          read.push_back(input);
        } else {
          checked_out = false;
          break;
        }
      }
      if (!checked_out) {
        tm.AbortDop(*dop).ok();
        continue;
      }
      auto dov = tm.CheckinCommit(*dop, plane.MakeObject(round), read);
      if (dov.ok()) {
        // Committed on BOTH shards: the new DOV exists on the home
        // shard and no participant still holds the registration.
        EXPECT_TRUE(plane.shards[t % 2].repo->Contains(*dov));
        EXPECT_TRUE(
            plane.shards[0].tm->DaOfDop(*dop).status().IsNotFound());
        EXPECT_TRUE(
            plane.shards[1].tm->DaOfDop(*dop).status().IsNotFound());
        ++committed[t];
      } else {
        tm.AbortDop(*dop).ok();
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(designer, t);
  for (auto& thread : threads) thread.join();
  plane.network.set_loss_probability(0.0);

  int total_committed = 0;
  for (int t = 0; t < kThreads; ++t) {
    total_committed += committed[t];
    // Both shards or neither, per DA: every committed round left
    // exactly one DOV on the home shard and none on the participant.
    EXPECT_EQ(plane.shards[t % 2].repo->DovsOf(DaId(40 + t)).size(),
              static_cast<size_t>(committed[t]));
    EXPECT_EQ(plane.shards[(t + 1) % 2].repo->DovsOf(DaId(40 + t)).size(),
              0u);
  }
  EXPECT_GT(total_committed, 0);
  // The storm really exercised what it claims: a lossy link (retries),
  // both 2PC ledgers, and choreographies spanning partitions.
  EXPECT_GT(plane.rpc.stats().retries, 0u);
  for (int s = 0; s < 2; ++s) {
    ServerTmStats stats = plane.shards[s].tm->stats();
    EXPECT_GT(stats.txns_decided_commit + stats.txns_decided_abort, 0u);
    EXPECT_GT(stats.cross_partition_ops, 0u);
  }
}

}  // namespace
}  // namespace concord::txn

namespace concord::sim {
namespace {

TEST(MultiServerSimulationTest, TwoNodePlaneCompletesAndReportsPerNode) {
  SimulationOptions options;
  options.designs = 4;
  options.complexity = 4;
  options.server_nodes = 2;
  MultiDesignerSimulation simulation(options);
  auto report = simulation.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->designs_completed, 4);
  ASSERT_EQ(report->per_node_round_trips.size(), 2u);
  // The CM's least-loaded placement spread the designs: both nodes
  // carried real traffic.
  EXPECT_GT(report->per_node_round_trips[0], 0u);
  EXPECT_GT(report->per_node_round_trips[1], 0u);
  // Accounting is consistent: the per-node split sums to the total.
  EXPECT_EQ(report->per_node_round_trips[0] + report->per_node_round_trips[1],
            report->rpc_calls);
}

TEST(MultiServerSimulationTest, SingleNodeReportUnchangedShape) {
  SimulationOptions options;
  options.designs = 2;
  options.complexity = 4;
  MultiDesignerSimulation simulation(options);
  auto report = simulation.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->designs_completed, 2);
  ASSERT_EQ(report->per_node_round_trips.size(), 1u);
  EXPECT_EQ(report->per_node_round_trips[0], report->rpc_calls);
  EXPECT_EQ(report->cross_shard_interactions, 0u);
}

}  // namespace
}  // namespace concord::sim
