// Property tests sweeping failure-injection points.
//
// The strongest claim of CONCORD's joint failure model (Sect. 5) is
// that a crash at ANY point of a design activity's execution is
// survivable with forward recovery and without duplicated or corrupted
// work. These parameterized suites crash the workstation (and,
// separately, the server) at every interesting position of the
// five-DOP design-plane work flow and require the final design state
// to be bit-identical to an uninterrupted run.

#include <gtest/gtest.h>

#include "common/strings.h"
#include "core/concord_system.h"
#include "sim/scenarios.h"
#include "tests/seed.h"
#include "vlsi/schema.h"

namespace concord::core {
namespace {

using test::ScopedSeedReporter;
using test::TestSeed;

/// Every sweep below drives its system from this seed — the suite
/// default (42) normally, or a CONCORD_SEED override when replaying a
/// failure (tests/seed.h).
SystemConfig SweepConfig() {
  SystemConfig config;
  config.seed = TestSeed(42);
  return config;
}

/// Runs the full design-plane work flow without any failure and
/// returns the content hash of the final DOV.
uint64_t UninterruptedRunHash() {
  ConcordSystem system(SweepConfig());
  auto da = sim::SetupTopLevelDa(&system, "chip", 6, 1e9, 0);
  system.StartDa(*da).ok();
  system.RunDa(*da).ok();
  return (*system.repository().Get(*system.CurrentVersion(*da)))
      .data.ContentHash();
}

// --- Workstation crash after k completed DOPs ------------------------------

class WorkstationCrashSweep : public ::testing::TestWithParam<int> {};

TEST_P(WorkstationCrashSweep, FinalStateIdenticalToUninterruptedRun) {
  const size_t crash_after_dops = static_cast<size_t>(GetParam());
  SystemConfig config = SweepConfig();
  ScopedSeedReporter reporter(config.seed);
  ConcordSystem system(config);
  auto da = sim::SetupTopLevelDa(&system, "chip", 6, 1e9, 0);
  ASSERT_TRUE(system.StartDa(*da).ok());
  auto& dm = system.dm(*da);
  while (dm.CompletedDops().size() < crash_after_dops) {
    auto more = dm.Step();
    ASSERT_TRUE(more.ok());
    ASSERT_TRUE(*more);
  }

  NodeId ws = (*system.cm().GetDa(*da))->workstation;
  system.CrashWorkstation(ws);
  ASSERT_TRUE(system.RecoverWorkstation(ws).ok());
  ASSERT_TRUE(system.RunDa(*da).ok());

  // No duplicated work: exactly 5 DOPs committed.
  EXPECT_EQ(system.server_tm().stats().dops_committed, 5u);
  EXPECT_EQ(system.repository().DovsOf(*da).size(), 5u);
  // Bit-identical to the uninterrupted run: replay preserves both the
  // design data and the RNG stream consumed by the tools.
  EXPECT_EQ((*system.repository().Get(*system.CurrentVersion(*da)))
                .data.ContentHash(),
            UninterruptedRunHash());
  auto quality = system.cm().Evaluate(*da, *system.CurrentVersion(*da));
  EXPECT_TRUE(quality->is_final());
}

INSTANTIATE_TEST_SUITE_P(EveryDopBoundary, WorkstationCrashSweep,
                         ::testing::Range(0, 5));

// --- Double crash: crash again during recovery-finished state --------------

class DoubleCrashSweep : public ::testing::TestWithParam<int> {};

TEST_P(DoubleCrashSweep, SurvivesRepeatedCrashes) {
  const size_t first_crash = static_cast<size_t>(GetParam());
  SystemConfig config = SweepConfig();
  ScopedSeedReporter reporter(config.seed);
  ConcordSystem system(config);
  auto da = sim::SetupTopLevelDa(&system, "chip", 6, 1e9, 0);
  ASSERT_TRUE(system.StartDa(*da).ok());
  auto& dm = system.dm(*da);
  NodeId ws = (*system.cm().GetDa(*da))->workstation;

  while (dm.CompletedDops().size() < first_crash) {
    ASSERT_TRUE(dm.Step().ok());
  }
  system.CrashWorkstation(ws);
  ASSERT_TRUE(system.RecoverWorkstation(ws).ok());
  // Progress one more DOP (if any left), then crash again.
  if (dm.state() == workflow::DmState::kActive &&
      dm.CompletedDops().size() < 5) {
    size_t target = dm.CompletedDops().size() + 1;
    while (dm.CompletedDops().size() < target &&
           dm.state() == workflow::DmState::kActive) {
      auto more = dm.Step();
      ASSERT_TRUE(more.ok());
      if (!*more) break;
    }
  }
  system.CrashWorkstation(ws);
  ASSERT_TRUE(system.RecoverWorkstation(ws).ok());
  ASSERT_TRUE(system.RunDa(*da).ok());

  EXPECT_EQ(system.server_tm().stats().dops_committed, 5u);
  EXPECT_EQ((*system.repository().Get(*system.CurrentVersion(*da)))
                .data.ContentHash(),
            UninterruptedRunHash());
}

INSTANTIATE_TEST_SUITE_P(EveryFirstCrashPoint, DoubleCrashSweep,
                         ::testing::Range(0, 5));

// --- Server crash after k completed DOPs ------------------------------------

class ServerCrashSweep : public ::testing::TestWithParam<int> {};

TEST_P(ServerCrashSweep, CommittedWorkSurvives) {
  const size_t crash_after_dops = static_cast<size_t>(GetParam());
  SystemConfig config = SweepConfig();
  ScopedSeedReporter reporter(config.seed);
  ConcordSystem system(config);
  auto da = sim::SetupTopLevelDa(&system, "chip", 6, 1e9, 0);
  ASSERT_TRUE(system.StartDa(*da).ok());
  auto& dm = system.dm(*da);
  while (dm.CompletedDops().size() < crash_after_dops) {
    ASSERT_TRUE(dm.Step().ok());
  }
  size_t dovs_before = system.repository().DovsOf(*da).size();

  system.CrashServer();
  ASSERT_TRUE(system.RecoverServer().ok());
  // All committed versions survived the crash.
  EXPECT_EQ(system.repository().DovsOf(*da).size(), dovs_before);
  // The DA can finish its work flow afterwards.
  ASSERT_TRUE(system.RunDa(*da).ok());
  EXPECT_EQ(system.repository().DovsOf(*da).size(), 5u);
  auto quality = system.cm().Evaluate(*da, *system.CurrentVersion(*da));
  EXPECT_TRUE(quality->is_final());
}

INSTANTIATE_TEST_SUITE_P(EveryDopBoundary, ServerCrashSweep,
                         ::testing::Range(0, 5));

// --- Crash during the delegation scenario ------------------------------------

TEST(DelegationCrashTest, ServerCrashBetweenDelegationsRecovers) {
  SystemConfig config = SweepConfig();
  ScopedSeedReporter reporter(config.seed);
  ConcordSystem system(config);
  auto top = sim::SetupTopLevelDa(&system, "top", 6, 1e9, 0);
  ASSERT_TRUE(system.StartDa(*top).ok());
  ASSERT_TRUE(system.RunDa(*top).ok());

  // Delegate two sub-DAs.
  std::vector<DaId> subs;
  for (int i = 0; i < 2; ++i) {
    cooperation::DaDescription desc;
    desc.dot = system.dots().module;
    desc.spec = sim::MakeSpec(1e9, 0, vlsi::kDomainFloorplan);
    desc.designer = DesignerId(2 + i);
    desc.dc = sim::MakeChipPlanningScript(1);
    desc.workstation = system.AddWorkstation(IndexedName("s", i));
    auto sub = system.CreateSubDa(*top, desc);
    ASSERT_TRUE(sub.ok());
    ASSERT_TRUE(system.StartDa(*sub).ok());
    subs.push_back(*sub);
  }

  system.CrashServer();
  ASSERT_TRUE(system.RecoverServer().ok());

  // The hierarchy survived: children, states, delegation relationships.
  EXPECT_EQ(system.cm().Children(*top).size(), 2u);
  for (DaId sub : subs) {
    EXPECT_EQ(*system.cm().StateOf(sub), cooperation::DaState::kActive);
    bool has_delegation = false;
    for (const auto& rel : system.cm().RelationshipsOf(sub)) {
      if (rel.kind == cooperation::RelKind::kDelegation) {
        has_delegation = true;
      }
    }
    EXPECT_TRUE(has_delegation);
  }
  // And cooperation operations still work.
  ASSERT_TRUE(system.cm()
                  .SubDaImpossibleSpecification(subs[0], "post-crash")
                  .ok());
  EXPECT_EQ(*system.cm().StateOf(subs[0]),
            cooperation::DaState::kReadyForTermination);
}

}  // namespace
}  // namespace concord::core
