#include <gtest/gtest.h>

#include "vlsi/floorplan.h"
#include "vlsi/netlist.h"
#include "vlsi/schema.h"
#include "vlsi/shape_function.h"
#include "vlsi/tools.h"

namespace concord::vlsi {
namespace {

// --- ShapeFunction ------------------------------------------------------

TEST(ShapeFunctionTest, NormalizeKeepsParetoFrontier) {
  ShapeFunction fn({{4, 4}, {2, 8}, {8, 2}, {4, 6}, {3, 8}});
  // (4,6) dominated by (4,4); (3,8) dominated by (2,8).
  ASSERT_EQ(fn.size(), 3u);
  EXPECT_EQ(fn.shapes()[0], (Shape{2, 8}));
  EXPECT_EQ(fn.shapes()[1], (Shape{4, 4}));
  EXPECT_EQ(fn.shapes()[2], (Shape{8, 2}));
}

TEST(ShapeFunctionTest, FixedHasOneShape) {
  ShapeFunction fn = ShapeFunction::Fixed(3, 5);
  ASSERT_EQ(fn.size(), 1u);
  EXPECT_DOUBLE_EQ(fn.MinAreaShape()->Area(), 15);
}

TEST(ShapeFunctionTest, SoftRealizesAreaAcrossAspects) {
  ShapeFunction fn = ShapeFunction::Soft(100, 0.5, 2.0, 8);
  EXPECT_GE(fn.size(), 2u);
  for (const Shape& s : fn.shapes()) {
    EXPECT_NEAR(s.Area(), 100, 1e-9);
    double aspect = s.width / s.height;
    EXPECT_GE(aspect, 0.5 - 1e-9);
    EXPECT_LE(aspect, 2.0 + 1e-9);
  }
}

TEST(ShapeFunctionTest, BestUnderWidth) {
  ShapeFunction fn({{2, 8}, {4, 4}, {8, 2}});
  EXPECT_EQ(*fn.BestUnderWidth(5), (Shape{4, 4}));
  EXPECT_EQ(*fn.BestUnderWidth(100), (Shape{8, 2}));
  EXPECT_TRUE(fn.BestUnderWidth(1).status().IsNotFound());
}

TEST(ShapeFunctionTest, EmptyFunctionErrors) {
  ShapeFunction fn;
  EXPECT_FALSE(fn.MinAreaShape().ok());
  EXPECT_FALSE(fn.BestUnderWidth(10).ok());
}

TEST(ShapeFunctionTest, CombineVerticalAddsWidths) {
  ShapeFunction a = ShapeFunction::Fixed(2, 3);
  ShapeFunction b = ShapeFunction::Fixed(4, 5);
  ShapeFunction v = ShapeFunction::Combine(a, b, /*vertical_cut=*/true);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v.shapes()[0], (Shape{6, 5}));
  ShapeFunction h = ShapeFunction::Combine(a, b, /*vertical_cut=*/false);
  ASSERT_EQ(h.size(), 1u);
  EXPECT_EQ(h.shapes()[0], (Shape{4, 8}));
}

TEST(ShapeFunctionTest, CombinedAreaAtLeastSumOfParts) {
  ShapeFunction a = ShapeFunction::Soft(50, 0.5, 2.0, 6);
  ShapeFunction b = ShapeFunction::Soft(80, 0.5, 2.0, 6);
  for (bool vertical : {true, false}) {
    ShapeFunction combined = ShapeFunction::Combine(a, b, vertical);
    EXPECT_GE(combined.MinAreaShape()->Area(), 130 - 1e-9);
  }
}

TEST(ShapeFunctionTest, SerializeRoundtrip) {
  ShapeFunction fn = ShapeFunction::Soft(123.456, 0.7, 1.9, 5);
  auto back = ShapeFunction::Deserialize(fn.Serialize());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), fn.size());
  for (size_t i = 0; i < fn.size(); ++i) {
    EXPECT_DOUBLE_EQ(back->shapes()[i].width, fn.shapes()[i].width);
    EXPECT_DOUBLE_EQ(back->shapes()[i].height, fn.shapes()[i].height);
  }
  EXPECT_FALSE(ShapeFunction::Deserialize("garbage").ok());
  EXPECT_TRUE(ShapeFunction::Deserialize("")->empty());
}

/// Property sweep: Stockmeyer combination is commutative in area terms
/// and its frontier is a strict staircase.
class CombineP : public ::testing::TestWithParam<std::tuple<double, double>> {
};

TEST_P(CombineP, FrontierIsStaircase) {
  auto [area_a, area_b] = GetParam();
  ShapeFunction a = ShapeFunction::Soft(area_a, 0.4, 2.5, 7);
  ShapeFunction b = ShapeFunction::Soft(area_b, 0.4, 2.5, 7);
  for (bool vertical : {true, false}) {
    ShapeFunction ab = ShapeFunction::Combine(a, b, vertical);
    ShapeFunction ba = ShapeFunction::Combine(b, a, vertical);
    EXPECT_NEAR(ab.MinAreaShape()->Area(), ba.MinAreaShape()->Area(), 1e-6);
    for (size_t i = 1; i < ab.size(); ++i) {
      EXPECT_GT(ab.shapes()[i].width, ab.shapes()[i - 1].width);
      EXPECT_LT(ab.shapes()[i].height, ab.shapes()[i - 1].height);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CombineP,
    ::testing::Combine(::testing::Values(10.0, 55.0, 200.0),
                       ::testing::Values(5.0, 90.0, 400.0)));

// --- Netlist ------------------------------------------------------------

TEST(NetlistTest, CutSizeCountsCrossingNets) {
  Netlist netlist;
  netlist.AddModule("a");
  netlist.AddModule("b");
  netlist.AddModule("c");
  netlist.AddNet({"n1", {"a", "b"}});
  netlist.AddNet({"n2", {"b", "c"}});
  netlist.AddNet({"n3", {"a", "b", "c"}});
  EXPECT_EQ(netlist.CutSize({"a"}), 2);       // n1, n3 cross
  EXPECT_EQ(netlist.CutSize({"a", "b"}), 2);  // n2, n3 cross
  EXPECT_EQ(netlist.CutSize({"a", "b", "c"}), 0);
  EXPECT_EQ(netlist.CutSize({}), 0);
}

TEST(NetlistTest, RandomIsDeterministicAndWellFormed) {
  Rng rng1(5);
  Rng rng2(5);
  Netlist a = Netlist::Random(10, 20, 4, &rng1);
  Netlist b = Netlist::Random(10, 20, 4, &rng2);
  EXPECT_EQ(a.Serialize(), b.Serialize());
  EXPECT_EQ(a.modules().size(), 10u);
  EXPECT_EQ(a.nets().size(), 20u);
  for (const Net& net : a.nets()) {
    EXPECT_GE(net.pins.size(), 2u);
    for (const std::string& pin : net.pins) {
      EXPECT_TRUE(a.HasModule(pin));
    }
  }
}

TEST(NetlistTest, HighDegreeNetsTerminate) {
  Rng rng(3);
  // Degree up to 8 with only 4 modules: generation must still finish.
  Netlist netlist = Netlist::Random(4, 10, 8, &rng);
  EXPECT_EQ(netlist.nets().size(), 10u);
}

TEST(NetlistTest, SerializeRoundtrip) {
  Rng rng(9);
  Netlist netlist = Netlist::Random(6, 8, 3, &rng);
  auto back = Netlist::Deserialize(netlist.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Serialize(), netlist.Serialize());
  EXPECT_FALSE(Netlist::Deserialize("no separator").ok());
}

TEST(NetlistTest, EmptyNetlistSerializes) {
  Netlist netlist;
  netlist.AddModule("only");
  auto back = Netlist::Deserialize(netlist.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->modules().size(), 1u);
  EXPECT_TRUE(back->nets().empty());
}

// --- ChipPlanner ---------------------------------------------------------

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() : rng_(11) {
    netlist_ = Netlist::Random(8, 16, 3, &rng_);
    for (const std::string& module : netlist_.modules()) {
      shapes_[module] = ShapeFunction::Soft(50 + 10 * (module.size() % 3),
                                            0.5, 2.0, 6);
    }
  }
  Rng rng_;
  Netlist netlist_;
  std::map<std::string, ShapeFunction> shapes_;
};

TEST_F(PlannerTest, PlanPlacesEveryModuleDisjointly) {
  ChipPlanner planner;
  auto plan = planner.Plan(netlist_, shapes_);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->cells.size(), netlist_.modules().size());
  // All inside the outline.
  for (const PlacedCell& cell : plan->cells) {
    EXPECT_GE(cell.x, -1e-9);
    EXPECT_GE(cell.y, -1e-9);
    EXPECT_LE(cell.x + cell.width, plan->width + 1e-6);
    EXPECT_LE(cell.y + cell.height, plan->height + 1e-6);
  }
  // Pairwise disjoint (slicing structure guarantees it; verify).
  for (size_t i = 0; i < plan->cells.size(); ++i) {
    for (size_t j = i + 1; j < plan->cells.size(); ++j) {
      const PlacedCell& a = plan->cells[i];
      const PlacedCell& b = plan->cells[j];
      bool overlap = a.x < b.x + b.width - 1e-9 &&
                     b.x < a.x + a.width - 1e-9 &&
                     a.y < b.y + b.height - 1e-9 &&
                     b.y < a.y + a.height - 1e-9;
      EXPECT_FALSE(overlap) << a.name << " overlaps " << b.name;
    }
  }
  EXPECT_GT(plan->wirelength, 0);
}

TEST_F(PlannerTest, ChipAreaCoversSumOfModuleMinAreas) {
  ChipPlanner planner;
  auto plan = planner.Plan(netlist_, shapes_);
  ASSERT_TRUE(plan.ok());
  double sum = 0;
  for (const auto& [name, fn] : shapes_) sum += fn.MinAreaShape()->Area();
  EXPECT_GE(plan->Area(), sum - 1e-6);
  // Slicing floorplans waste some area but not absurdly much here.
  EXPECT_LE(plan->Area(), sum * 2.5);
}

TEST_F(PlannerTest, MaxWidthRespected) {
  ChipPlanner::Options options;
  options.max_width = 40;
  ChipPlanner planner(options);
  auto plan = planner.Plan(netlist_, shapes_);
  if (plan.ok()) {
    EXPECT_LE(plan->width, 40 + 1e-9);
  }  // (an infeasible bound surfacing as an error is also acceptable)
}

TEST_F(PlannerTest, InfeasibleWidthFails) {
  ChipPlanner::Options options;
  options.max_width = 0.5;  // nothing fits
  ChipPlanner planner(options);
  EXPECT_FALSE(planner.Plan(netlist_, shapes_).ok());
}

TEST_F(PlannerTest, MissingShapeFunctionFails) {
  shapes_.erase(shapes_.begin());
  ChipPlanner planner;
  auto tree = planner.Bipartition(netlist_, shapes_);
  ASSERT_TRUE(tree.ok());
  EXPECT_FALSE(planner.Size(**tree, shapes_).ok());
}

TEST_F(PlannerTest, EmptyNetlistRejected) {
  ChipPlanner planner;
  EXPECT_FALSE(planner.Plan(Netlist{}, shapes_).ok());
}

TEST_F(PlannerTest, SingleModulePlan) {
  Netlist single;
  single.AddModule("m0");
  std::map<std::string, ShapeFunction> shapes{
      {"m0", ShapeFunction::Fixed(4, 6)}};
  ChipPlanner planner;
  auto plan = planner.Plan(single, shapes);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->cells.size(), 1u);
  EXPECT_DOUBLE_EQ(plan->Area(), 24);
}

TEST(FloorplanTest, SerializeRoundtrip) {
  Floorplan fp;
  fp.width = 10.5;
  fp.height = 8.25;
  fp.wirelength = 33.3;
  fp.cut_size = 4;
  fp.cells.push_back({"m0", 0, 0, 5, 8.25});
  fp.cells.push_back({"m1", 5, 0, 5.5, 8.25});
  auto back = Floorplan::Deserialize(fp.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back->width, fp.width);
  EXPECT_EQ(back->cut_size, 4);
  ASSERT_EQ(back->cells.size(), 2u);
  EXPECT_EQ(back->cells[1].name, "m1");
  EXPECT_NE(back->Find("m0"), nullptr);
  EXPECT_EQ(back->Find("zz"), nullptr);
}

// --- Schema & tools ----------------------------------------------------------

class ToolsTest : public ::testing::Test {
 protected:
  ToolsTest() : rng_(21) {
    dots_ = RegisterVlsiSchema(&catalog_);
    toolbox_ = std::make_unique<ToolBox>(dots_);
  }

  storage::DesignObject RunPipelineUpTo(const std::string& last_tool) {
    storage::DesignObject obj = MakeBehavioralChip(dots_, "chip", 6);
    for (const char* tool :
         {kToolStructureSynthesis, kToolShapeFunctionGen, kToolPadFrameEdit,
          kToolChipPlanning, kToolChipAssembly}) {
      auto result = toolbox_->Run(tool, obj, &rng_);
      EXPECT_TRUE(result.ok()) << tool << ": " << result.status().ToString();
      if (!result.ok()) return obj;
      obj = result->object;
      if (last_tool == tool) break;
    }
    return obj;
  }

  storage::SchemaCatalog catalog_;
  VlsiDots dots_;
  std::unique_ptr<ToolBox> toolbox_;
  Rng rng_;
};

TEST_F(ToolsTest, SchemaRegistersPartOfChain) {
  EXPECT_TRUE(catalog_.IsPartOf(dots_.module, dots_.chip));
  EXPECT_TRUE(catalog_.IsPartOf(dots_.stdcell, dots_.chip));
  EXPECT_FALSE(catalog_.IsPartOf(dots_.chip, dots_.stdcell));
}

TEST_F(ToolsTest, BehavioralChipValidatesAgainstSchema) {
  storage::DesignObject chip = MakeBehavioralChip(dots_, "adder", 4);
  EXPECT_TRUE(catalog_.Validate(chip).ok());
  EXPECT_EQ(chip.GetAttr(kAttrDomain)->as_string(), kDomainBehavior);
}

TEST_F(ToolsTest, StructureSynthesisMovesToStructureDomain) {
  storage::DesignObject chip = MakeBehavioralChip(dots_, "chip", 6);
  auto result = toolbox_->StructureSynthesis(chip, &rng_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->object.GetAttr(kAttrDomain)->as_string(),
            kDomainStructure);
  auto netlist =
      Netlist::Deserialize(result->object.GetAttr(kAttrNetlist)->as_string());
  ASSERT_TRUE(netlist.ok());
  EXPECT_EQ(netlist->modules().size(), 6u);
  EXPECT_GT(result->work_units, 0u);
  EXPECT_TRUE(catalog_.Validate(result->object).ok());
}

TEST_F(ToolsTest, ToolsRejectWrongDomain) {
  storage::DesignObject chip = MakeBehavioralChip(dots_, "chip", 6);
  // Planning requires structure domain.
  EXPECT_FALSE(toolbox_->ChipPlanning(chip).ok());
  // Synthesis requires behavior domain.
  auto structured = toolbox_->StructureSynthesis(chip, &rng_);
  EXPECT_FALSE(
      toolbox_->StructureSynthesis(structured->object, &rng_).ok());
  // Assembly requires floorplan domain.
  EXPECT_FALSE(toolbox_->ChipAssembly(chip).ok());
}

TEST_F(ToolsTest, FullPipelineReachesMaskLayout) {
  storage::DesignObject final_obj = RunPipelineUpTo(kToolChipAssembly);
  EXPECT_EQ(final_obj.GetAttr(kAttrDomain)->as_string(), kDomainMaskLayout);
  EXPECT_GT(*final_obj.GetNumeric(kAttrArea), 0);
  EXPECT_GT(*final_obj.GetNumeric(kAttrWirelength), 0);
  EXPECT_TRUE(catalog_.Validate(final_obj).ok());
}

TEST_F(ToolsTest, RepartitioningKeepsModules) {
  storage::DesignObject structured = RunPipelineUpTo(kToolStructureSynthesis);
  auto before =
      Netlist::Deserialize(structured.GetAttr(kAttrNetlist)->as_string());
  auto result = toolbox_->Repartitioning(structured, &rng_);
  ASSERT_TRUE(result.ok());
  auto after =
      Netlist::Deserialize(result->object.GetAttr(kAttrNetlist)->as_string());
  EXPECT_EQ(after->modules().size(), before->modules().size());
  EXPECT_EQ(after->nets().size(), before->nets().size());
}

TEST_F(ToolsTest, ShapeFunctionGenerationCoversAllModules) {
  storage::DesignObject structured = RunPipelineUpTo(kToolStructureSynthesis);
  auto result = toolbox_->ShapeFunctionGeneration(structured);
  ASSERT_TRUE(result.ok());
  auto table =
      DeserializeShapeTable(result->object.GetAttr(kAttrShapes)->as_string());
  ASSERT_TRUE(table.ok());
  auto netlist =
      Netlist::Deserialize(structured.GetAttr(kAttrNetlist)->as_string());
  EXPECT_EQ(table->size(), netlist->modules().size());
  for (const auto& [name, fn] : *table) {
    EXPECT_FALSE(fn.empty());
  }
}

TEST_F(ToolsTest, PadFrameEditSetsInterface) {
  storage::DesignObject obj = RunPipelineUpTo(kToolShapeFunctionGen);
  auto result = toolbox_->PadFrameEdit(obj, 55.0);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(*result->object.GetNumeric(kAttrMaxWidth), 55.0);
  EXPECT_TRUE(result->object.HasAttr(kAttrPadFrame));
}

TEST_F(ToolsTest, ChipPlanningRespectsInterfaceWidth) {
  storage::DesignObject obj = RunPipelineUpTo(kToolShapeFunctionGen);
  auto padded = toolbox_->PadFrameEdit(obj, 1e9);  // no effective bound
  auto plan = toolbox_->ChipPlanning(padded->object);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->object.GetAttr(kAttrDomain)->as_string(), kDomainFloorplan);
  EXPECT_GT(*plan->object.GetNumeric(kAttrArea), 0);
}

TEST_F(ToolsTest, InfeasibleInterfaceSurfacesAsError) {
  storage::DesignObject obj = RunPipelineUpTo(kToolShapeFunctionGen);
  auto padded = toolbox_->PadFrameEdit(obj, 0.1);
  EXPECT_FALSE(toolbox_->ChipPlanning(padded->object).ok());
}

TEST_F(ToolsTest, CellSynthesisFixesShape) {
  storage::DesignObject cell(dots_.stdcell);
  cell.SetAttr(kAttrName, "and2");
  cell.SetAttr(kAttrDomain, kDomainStructure);
  cell.SetAttr(kAttrArea, 36.0);
  auto result = toolbox_->CellSynthesis(cell);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(*result->object.GetNumeric(kAttrWidth), 0);
  EXPECT_EQ(result->object.GetAttr(kAttrDomain)->as_string(),
            kDomainMaskLayout);
}

TEST_F(ToolsTest, UnknownToolNameRejected) {
  storage::DesignObject chip = MakeBehavioralChip(dots_, "chip", 4);
  EXPECT_TRUE(toolbox_->Run("no_such_tool", chip, &rng_).status().IsNotFound());
}

TEST_F(ToolsTest, ShapeTableSerializeRoundtrip) {
  std::map<std::string, ShapeFunction> table;
  table["a"] = ShapeFunction::Soft(10, 0.5, 2, 4);
  table["b"] = ShapeFunction::Fixed(3, 4);
  auto back = DeserializeShapeTable(SerializeShapeTable(table));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 2u);
  EXPECT_EQ(back->at("b").shapes()[0], (Shape{3, 4}));
  EXPECT_FALSE(DeserializeShapeTable("noequals").ok());
  EXPECT_TRUE(DeserializeShapeTable("")->empty());
}

TEST_F(ToolsTest, AllToolNamesListsSeven) {
  EXPECT_EQ(AllToolNames().size(), 7u);
}

}  // namespace
}  // namespace concord::vlsi
